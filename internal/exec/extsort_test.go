package exec

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"orderopt/internal/optimizer"
	"orderopt/internal/query"
	"orderopt/internal/tpcr"
)

// extsortInput builds a shuffled input with duplicate keys and
// distinct payloads, so stability is observable: equal-key rows must
// come out in input order.
func extsortInput(n int) []Row {
	rng := rand.New(rand.NewSource(11))
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{int64(rng.Intn(n / 8)), int64(i)}
	}
	return rows
}

func countSpillFiles(t *testing.T, dir string) int {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "extsort-*.run"))
	if err != nil {
		t.Fatal(err)
	}
	return len(names)
}

// TestExtSortSpillsAndMatchesSort pins the external sort against the
// in-memory Sort on the same input: identical output (both are stable,
// so duplicate keys pin the merge's run-order tie-break), multiple
// runs actually spilled, and every spill file removed on Close.
func TestExtSortSpillsAndMatchesSort(t *testing.T) {
	rows := extsortInput(2000)
	want, err := Collect(&Sort{In: NewScan(rows), Keys: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	st := &OpStats{}
	es := &ExtSort{In: NewScan(rows), Keys: []int{0},
		MaxRunBytes: 4096, Dir: dir, St: st}
	got, err := Collect(es)
	if err != nil {
		t.Fatal(err)
	}
	if !rowsEqual(got, want) {
		t.Fatalf("external sort (%d rows) differs from Sort (%d rows)", len(got), len(want))
	}
	if st.SpillRuns < 2 {
		t.Fatalf("spill runs = %d, want several at a 4KiB run bound", st.SpillRuns)
	}
	if st.SpilledBytes <= 0 {
		t.Fatalf("spilled bytes = %d", st.SpilledBytes)
	}
	if n := countSpillFiles(t, dir); n != 0 {
		t.Fatalf("%d spill files left after Close", n)
	}
}

// TestExtSortNoSpill: input under the run bound stays in memory — no
// files, no spill counters, same output.
func TestExtSortNoSpill(t *testing.T) {
	rows := extsortInput(64)
	want, err := Collect(&Sort{In: NewScan(rows), Keys: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	st := &OpStats{}
	got, err := Collect(&ExtSort{In: NewScan(rows), Keys: []int{0},
		MaxRunBytes: 1 << 20, Dir: dir, St: st})
	if err != nil {
		t.Fatal(err)
	}
	if !rowsEqual(got, want) {
		t.Fatal("in-memory external sort differs from Sort")
	}
	if st.SpillRuns != 0 || st.SpilledBytes != 0 {
		t.Fatalf("unexpected spill: runs=%d bytes=%d", st.SpillRuns, st.SpilledBytes)
	}
}

// TestExtSortBudgetDrivenFlush: no run-size bound, a byte budget that
// cannot hold the whole input — the budget's push-back must trigger
// the flushes, and the sort must complete where the in-memory Sort
// would have failed.
func TestExtSortBudgetDrivenFlush(t *testing.T) {
	rows := extsortInput(2000)
	budget := Budget{MaxBytes: 1 << 13} // ~8KiB: a fraction of the input
	p := &Pipeline{Life: &Life{budget: budget}}
	if _, err := Collect(&Sort{In: NewScan(rows), Keys: []int{0}, Life: p.Life}); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("in-memory sort under the same budget: %v, want budget exceeded", err)
	}
	p = &Pipeline{Life: &Life{budget: budget}}
	dir := t.TempDir()
	st := &OpStats{}
	got, err := Collect(&ExtSort{In: NewScan(rows), Keys: []int{0},
		Life: p.Life, Dir: dir, St: st})
	if err != nil {
		t.Fatalf("external sort under budget: %v", err)
	}
	want, _ := Collect(&Sort{In: NewScan(rows), Keys: []int{0}})
	if !rowsEqual(got, want) {
		t.Fatal("budget-flushed external sort differs from Sort")
	}
	if st.SpillRuns == 0 {
		t.Fatal("budget never pushed back — no spill happened")
	}
	if n := countSpillFiles(t, dir); n != 0 {
		t.Fatalf("%d spill files left after Close", n)
	}
}

// TestExtSortBudgetTooSmall: when not even one row fits the budget,
// the sort must fail with ErrBudgetExceeded — there is nothing to
// flush.
func TestExtSortBudgetTooSmall(t *testing.T) {
	p := &Pipeline{Life: &Life{budget: Budget{MaxBytes: 8}}}
	dir := t.TempDir()
	_, err := Collect(&ExtSort{In: NewScan(extsortInput(64)), Keys: []int{0},
		Life: p.Life, Dir: dir})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("got %v, want budget exceeded", err)
	}
	if n := countSpillFiles(t, dir); n != 0 {
		t.Fatalf("%d spill files left after failed open", n)
	}
}

// TestExtSortDuplicateKeysAcrossRuns forces every run to hold copies
// of the same keys, so the k-way merge's tie-break (run generation
// order) carries the whole ordering.
func TestExtSortDuplicateKeysAcrossRuns(t *testing.T) {
	var rows []Row
	for rep := 0; rep < 50; rep++ {
		for k := int64(0); k < 10; k++ {
			rows = append(rows, Row{k, int64(len(rows))})
		}
	}
	st := &OpStats{}
	dir := t.TempDir()
	got, err := Collect(&ExtSort{In: NewScan(rows), Keys: []int{0},
		MaxRunBytes: 1024, Dir: dir, St: st})
	if err != nil {
		t.Fatal(err)
	}
	if st.SpillRuns < 2 {
		t.Fatalf("spill runs = %d, want several", st.SpillRuns)
	}
	// Stable: within one key, payloads (insertion positions) ascend.
	var prevKey, prevPos int64 = -1, -1
	for _, r := range got {
		if r[0] < prevKey {
			t.Fatalf("unsorted output at %v", r)
		}
		if r[0] != prevKey {
			prevKey, prevPos = r[0], -1
		}
		if r[1] <= prevPos {
			t.Fatalf("stability violated: key %d pos %d after %d", r[0], r[1], prevPos)
		}
		prevPos = r[1]
	}
	if len(got) != len(rows) {
		t.Fatalf("got %d rows, want %d", len(got), len(rows))
	}
}

// TestRunnerCompilesExtSort: SpillBytes on the runner turns every Sort
// in a compiled plan into an external sort; the plan result is
// unchanged, the sort's OpStats reports the runs, RowsSorted still
// counts the sorted stream, and the spill dir drains on Close.
func TestRunnerCompilesExtSort(t *testing.T) {
	reg := TPCRRegistry()
	ds, _ := reg.Get("tpcr-small")
	// Plan order-obliviously (no index orders, no merge joins): the
	// hash-everything plan must carry a top Sort — the shape that
	// spills at scale.
	_, g, err := tpcr.OrderStreamGraph()
	if err != nil {
		t.Fatal(err)
	}
	ds.ApplyStats(g)
	a, err := query.Analyze(g, query.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := optimizer.DefaultConfig(optimizer.ModeDFSM)
	cfg.DisableMergeJoin = true
	res, err := optimizer.Optimize(a, cfg)
	if err != nil {
		t.Fatal(err)
	}

	row := ds.Runner(a)
	want, _, err := row.Run(res.Best)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	spill := ds.Runner(a)
	spill.SpillBytes, spill.SpillDir = 2048, dir
	p, err := spill.Compile(res.Best)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if !rowsEqual(got, want) {
		t.Fatal("spilling plan differs from in-memory plan")
	}
	runs, bytes := p.SpillStats()
	if runs == 0 || bytes == 0 {
		t.Fatalf("spill stats = %d runs / %d bytes, want spills at a 2KiB bound", runs, bytes)
	}
	if p.RowsSorted() == 0 {
		t.Fatal("external sort no longer counts as a Sort in rows-sorted accounting")
	}
	if n := countSpillFiles(t, dir); n != 0 {
		t.Fatalf("%d spill files left after execution", n)
	}
}

// TestExtSortEmptyInput: zero rows, zero runs, zero output.
func TestExtSortEmptyInput(t *testing.T) {
	got, err := Collect(&ExtSort{In: NewScan(nil), Keys: []int{0}, MaxRunBytes: 1})
	if err != nil || len(got) != 0 {
		t.Fatalf("empty input: rows=%d err=%v", len(got), err)
	}
	if _, err := os.Stat(os.TempDir()); err != nil {
		t.Fatal(err)
	}
}
