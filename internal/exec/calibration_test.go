package exec

import (
	"testing"

	"orderopt/internal/optimizer"
	"orderopt/internal/query"
	"orderopt/internal/tpcr"

	"orderopt/internal/plan"
)

// TestQ8CostCalibration pins the corrected plan choice on q8 over
// tpcr-large statistics. Before the sort/hash recalibration the model
// underpriced sorting ~10x and overpriced hash probes, steering the
// DFSM tier into a merge-join pipeline the executor measured slower
// than the order-oblivious hash plan (the q8/tpcr-large inversion).
// With the constants calibrated against BENCH_exec.json, the chosen
// plan must be the measured-faster shape: hash joins probing lineitem,
// no merge joins, and ordering paid only on the small post-join result
// (a top Sort feeding GroupSorted) — priced below the merge-join
// alternative.
func TestQ8CostCalibration(t *testing.T) {
	reg := TPCRRegistry()
	ds, ok := reg.Get("tpcr-large")
	if !ok {
		t.Fatal("no dataset tpcr-large")
	}
	_, g, err := tpcr.Query8Graph()
	if err != nil {
		t.Fatal(err)
	}
	ds.ApplyStats(g)
	a, err := query.Analyze(g, query.AnalyzeOptions{UseIndexes: true, TrackGroupings: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := optimizer.Optimize(a, optimizer.DefaultConfig(optimizer.ModeDFSM))
	if err != nil {
		t.Fatal(err)
	}
	best := res.Best

	if findOp(best, plan.MergeJoin) != nil {
		t.Fatalf("q8/tpcr-large still chooses a merge join:\n%s", best)
	}
	if findOp(best, plan.HashJoin) == nil {
		t.Fatalf("q8/tpcr-large plan has no hash join:\n%s", best)
	}
	if findOp(best, plan.GroupSorted) == nil {
		t.Fatalf("q8/tpcr-large plan does not group the sorted result:\n%s", best)
	}
	s := findOp(best, plan.Sort)
	if s == nil {
		t.Fatalf("expected a small top sort over the join result:\n%s", best)
	}
	if s.Card > 1000 {
		t.Fatalf("top sort over %.0f rows — ordering paid on a join input, not the result:\n%s", s.Card, best)
	}

	// The merge-join alternative the old constants preferred must now
	// cost more than the chosen hash pipeline.
	noHash := optimizer.DefaultConfig(optimizer.ModeDFSM)
	noHash.DisableHashJoin = true
	mres, err := optimizer.Optimize(a, noHash)
	if err != nil {
		t.Fatal(err)
	}
	if findOp(mres.Best, plan.MergeJoin) == nil {
		t.Fatalf("hash-free alternative contains no merge join:\n%s", mres.Best)
	}
	if best.Cost >= mres.Best.Cost {
		t.Fatalf("inversion: hash plan cost %.1f not below merge plan cost %.1f",
			best.Cost, mres.Best.Cost)
	}

	// The chosen plan executes, and runtime confirms ordering was paid
	// only on the small result: rows-sorted stays far below the 40k
	// lineitem probe input the old plan merged.
	r := ds.Runner(a)
	p, err := r.Compile(best)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute(); err != nil {
		t.Fatal(err)
	}
	if n := p.RowsSorted(); n <= 0 || n >= 1000 {
		t.Fatalf("rows sorted = %d, want small positive (result-only sort)", n)
	}
}
