// Package exec is a streaming Volcano-style execution engine over
// in-memory tables: scans, filters, sorts, merge/hash/nested-loop joins
// and grouping. It started as the repo's validation harness — the
// property tests run real tuple streams through operator pipelines and
// check that every logical ordering the DFSM framework claims (and
// every functional dependency it consumed) physically holds — and has
// grown into the measured execution backend behind the serving layer's
// /execute endpoint and the runtime sort-avoidance benchmark
// (make bench-exec).
//
// Operators are pipelined: a merge join buffers only the current
// duplicate-key group of its right input, a hash join materializes only
// its build side, and the grouping operators emit groups as the stream
// closes them. Only Sort (by nature) and the build/inner sides of
// hash/nested-loop joins materialize. The order guard rails remain:
// merge joins and sorted grouping verify their input ordering while
// streaming, clustered grouping verifies that no group reopens — an
// unsound ordering claim by the planner surfaces as an execution error,
// not a wrong result. See docs/execution.md for the operator matrix.
package exec

import (
	"fmt"
	"sort"
)

// Row is one tuple; values are int64 (strings are dictionary-coded by
// the data generators, dates are day numbers).
type Row []int64

// Iterator is the Volcano operator interface.
type Iterator interface {
	// Open prepares the iterator; it must be called before Next.
	Open() error
	// Next returns the next row, or ok=false at end of stream.
	Next() (row Row, ok bool, err error)
	// Close releases resources. Close after Open is mandatory; Close
	// without (or before) Open must be safe and is a no-op for the
	// operator's own inputs.
	Close() error
}

// batchIterator is implemented by operators that can hand out many
// rows at once (the exchange operators): Collect and the root stats
// wrapper then skip the per-row Next hand-off. A batch is only valid
// until the next NextBatch call.
type batchIterator interface {
	NextBatch() ([]Row, bool, error)
}

// sizeHinter optionally accompanies batchIterator: an estimate of the
// total row count, letting Collect presize its result buffer.
type sizeHinter interface {
	SizeHint() int
}

// Collect drains it and returns all rows.
func Collect(it Iterator) ([]Row, error) {
	if err := it.Open(); err != nil {
		it.Close()
		return nil, err
	}
	defer it.Close()
	var out []Row
	if b, ok := it.(batchIterator); ok {
		if sh, ok := it.(sizeHinter); ok {
			if h := sh.SizeHint(); h > 0 && h <= 1<<22 {
				// Headroom over the estimate: a hint even 1% short would
				// otherwise double-and-copy the nearly full buffer on the
				// last few batches.
				out = make([]Row, 0, h+h/8+64)
			}
		}
		for {
			batch, ok, err := b.NextBatch()
			if err != nil {
				return nil, err
			}
			if !ok {
				return out, nil
			}
			out = append(out, batch...)
		}
	}
	for {
		row, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, row)
	}
}

// Scan yields the given rows.
type Scan struct {
	Rows []Row
	pos  int
}

// NewScan returns a scan over rows.
func NewScan(rows []Row) *Scan { return &Scan{Rows: rows} }

// Open implements Iterator.
func (s *Scan) Open() error { s.pos = 0; return nil }

// Next implements Iterator.
func (s *Scan) Next() (Row, bool, error) {
	if s.pos >= len(s.Rows) {
		return nil, false, nil
	}
	r := s.Rows[s.pos]
	s.pos++
	return r, true, nil
}

// Close implements Iterator.
func (s *Scan) Close() error { return nil }

// Filter yields input rows satisfying Pred.
type Filter struct {
	In   Iterator
	Pred func(Row) bool
}

// Open implements Iterator.
func (f *Filter) Open() error { return f.In.Open() }

// Next implements Iterator.
func (f *Filter) Next() (Row, bool, error) {
	for {
		row, ok, err := f.In.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if f.Pred(row) {
			return row, true, nil
		}
	}
}

// Close implements Iterator.
func (f *Filter) Close() error { return f.In.Close() }

// Project maps each input row through Cols.
type Project struct {
	In   Iterator
	Cols []int

	alloc rowAlloc // chunked allocator for output rows
}

// Open implements Iterator.
func (p *Project) Open() error { return p.In.Open() }

// Next implements Iterator.
func (p *Project) Next() (Row, bool, error) {
	row, ok, err := p.In.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := p.alloc.carve(len(p.Cols))
	for i, c := range p.Cols {
		out[i] = row[c]
	}
	return out, true, nil
}

// Close implements Iterator.
func (p *Project) Close() error { return p.In.Close() }

// Sort materializes its input and yields it ordered by Keys (ascending,
// stable). It is the only operator that inherently materializes its
// whole input — which is exactly why the order-optimization framework
// exists to avoid it. With a Life attached, every buffered row is
// charged against the query's budget as it arrives.
type Sort struct {
	In   Iterator
	Keys []int
	Life *Life

	rows []Row
	pos  int
}

// Open implements Iterator.
func (s *Sort) Open() error {
	if err := s.In.Open(); err != nil {
		s.In.Close()
		return err
	}
	var rows []Row
	for {
		row, ok, err := s.In.Next()
		if err != nil {
			s.In.Close()
			return err
		}
		if !ok {
			break
		}
		if err := s.Life.holdRow(row); err != nil {
			s.In.Close()
			return err
		}
		rows = append(rows, row)
	}
	if err := s.In.Close(); err != nil {
		return err
	}
	sort.SliceStable(rows, func(i, j int) bool {
		return lessByKeys(rows[i], rows[j], s.Keys)
	})
	s.rows = rows
	s.pos = 0
	return nil
}

// Next implements Iterator.
func (s *Sort) Next() (Row, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, true, nil
}

// Close implements Iterator.
func (s *Sort) Close() error { s.rows = nil; return nil }

func lessByKeys(a, b Row, keys []int) bool {
	for _, k := range keys {
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return false
}

// MergeJoin equi-joins two inputs sorted on their key columns; output
// rows are left ++ right. Duplicate key groups produce the full cross
// product with the outer (left) order preserved — the ordering behaviour
// the plan generator relies on.
//
// The join is fully pipelined: it buffers only the current duplicate-key
// group of the right input (rewound per matching left row) and a
// one-row lookahead; both inputs are verified to be sorted as they
// stream, so an unsorted input fails at the Next that observes it.
type MergeJoin struct {
	Left, Right Iterator
	LeftKey     int
	RightKey    int
	// Life, when set, charges the buffered duplicate-key group against
	// the query budget (released as the group is replaced).
	Life *Life

	left       Row   // current left row, nil when a new one is needed
	group      []Row // current right duplicate-key group
	groupKey   int64
	haveGroup  bool
	gi         int  // cross-product cursor within group
	matching   bool // left's key equals groupKey
	groupRows  int64
	groupBytes int64

	rightNext     Row // one-row lookahead into the right input
	rightDone     bool
	prevLeftKey   int64
	havePrevLeft  bool
	prevRightKey  int64
	havePrevRight bool
	opened        bool

	// seek, when set (morsel segments only), is the right input itself: a
	// seekable scan over rows materialized and sorted-verified at exchange
	// setup. The join then skips right rows below the current left key by
	// binary search instead of streaming past them, and drops the
	// right-side drain on left exhaustion (the shared materialization
	// already verified the full right stream).
	seek *seekScan

	alloc rowAlloc // chunked allocator for output rows
}

// Open implements Iterator.
func (m *MergeJoin) Open() error {
	if err := m.Left.Open(); err != nil {
		return err
	}
	if err := m.Right.Open(); err != nil {
		m.Left.Close()
		return err
	}
	m.left, m.group, m.haveGroup, m.gi, m.matching = nil, m.group[:0], false, 0, false
	m.Life.release(m.groupRows, m.groupBytes)
	m.groupRows, m.groupBytes = 0, 0
	m.rightNext, m.rightDone = nil, false
	m.havePrevLeft, m.havePrevRight = false, false
	m.opened = true
	return nil
}

// nextLeft advances the left input, verifying sortedness on the fly.
func (m *MergeJoin) nextLeft() (Row, bool, error) {
	row, ok, err := m.Left.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	k := row[m.LeftKey]
	if m.havePrevLeft && k < m.prevLeftKey {
		return nil, false, fmt.Errorf("exec: merge join left input not sorted on column %d", m.LeftKey)
	}
	m.prevLeftKey, m.havePrevLeft = k, true
	return row, true, nil
}

// nextRight advances the right lookahead, verifying sortedness. Seek
// mode skips the verification: the shared materialization (or the
// maintained index view) it reads from was verified once up front.
func (m *MergeJoin) nextRight() (Row, bool, error) {
	if m.seek != nil {
		row, ok, _ := m.seek.Next()
		return row, ok, nil
	}
	row, ok, err := m.Right.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	k := row[m.RightKey]
	if m.havePrevRight && k < m.prevRightKey {
		return nil, false, fmt.Errorf("exec: merge join right input not sorted on column %d", m.RightKey)
	}
	m.prevRightKey, m.havePrevRight = k, true
	return row, true, nil
}

// buildGroup loads the next duplicate-key group from the right input
// into m.group. It reports false when the right input is exhausted.
func (m *MergeJoin) buildGroup() (bool, error) {
	if m.rightNext == nil {
		if m.rightDone {
			return false, nil
		}
		row, ok, err := m.nextRight()
		if err != nil {
			return false, err
		}
		if !ok {
			m.rightDone = true
			return false, nil
		}
		m.rightNext = row
	}
	m.Life.release(m.groupRows, m.groupBytes)
	m.groupRows, m.groupBytes = 0, 0
	m.group = m.group[:0]
	m.groupKey = m.rightNext[m.RightKey]
	if err := m.holdGroupRow(m.rightNext); err != nil {
		return false, err
	}
	m.group = append(m.group, m.rightNext)
	m.rightNext = nil
	for {
		row, ok, err := m.nextRight()
		if err != nil {
			return false, err
		}
		if !ok {
			m.rightDone = true
			break
		}
		if row[m.RightKey] != m.groupKey {
			m.rightNext = row
			break
		}
		if err := m.holdGroupRow(row); err != nil {
			return false, err
		}
		m.group = append(m.group, row)
	}
	m.haveGroup = true
	return true, nil
}

// holdGroupRow charges one buffered group row against the budget,
// tracking the group's total so it can be released when replaced.
func (m *MergeJoin) holdGroupRow(row Row) error {
	if m.Life == nil {
		return nil
	}
	if err := m.Life.holdRow(row); err != nil {
		return err
	}
	m.groupRows++
	m.groupBytes += rowBytes(row)
	return nil
}

// Next implements Iterator.
func (m *MergeJoin) Next() (Row, bool, error) {
	for {
		if m.matching {
			if m.gi < len(m.group) {
				r := m.alloc.concat(m.left, m.group[m.gi])
				m.gi++
				return r, true, nil
			}
			// Cross product for this left row done; fetch the next left
			// row (it may share the key and rewind the group).
			m.matching = false
			m.left = nil
		}
		if m.left == nil {
			row, ok, err := m.nextLeft()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				if m.seek != nil {
					// Seek mode: the shared materialization verified the
					// whole right stream; draining it per morsel would
					// undo the skip-ahead win.
					return nil, false, nil
				}
				// Left exhausted: drain the right side so its
				// sortedness check covers the full stream the plan
				// claimed sorted (mirror of the left drain below).
				for {
					_, ok, err := m.nextRight()
					if err != nil {
						return nil, false, err
					}
					if !ok {
						return nil, false, nil
					}
				}
			}
			m.left = row
		}
		lk := m.left[m.LeftKey]
		if m.seek != nil && (!m.haveGroup || m.groupKey < lk) {
			// Skip right rows that can never match: the left stream is
			// non-decreasing, so anything below lk is dead. Discard a
			// stale lookahead and jump the scan to the first key >= lk.
			if m.rightNext != nil && m.rightNext[m.RightKey] < lk {
				m.rightNext = nil
			}
			if m.rightNext == nil && !m.rightDone {
				m.seek.SeekGE(lk)
			}
		}
		for !m.haveGroup || m.groupKey < lk {
			ok, err := m.buildGroup()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				// Right exhausted: no left row can match anymore, but
				// keep draining the left side so its sortedness check
				// still covers the full stream the plan claimed sorted.
				for {
					_, ok, err := m.nextLeft()
					if err != nil {
						return nil, false, err
					}
					if !ok {
						return nil, false, nil
					}
				}
			}
		}
		if m.groupKey == lk {
			m.gi = 0
			m.matching = true
			continue
		}
		// groupKey > lk: this left row has no partner.
		m.left = nil
	}
}

// Close implements Iterator.
func (m *MergeJoin) Close() error {
	m.Life.release(m.groupRows, m.groupBytes)
	m.groupRows, m.groupBytes = 0, 0
	m.group, m.left, m.rightNext = nil, nil, nil
	m.haveGroup, m.matching = false, false
	if !m.opened {
		return nil
	}
	m.opened = false
	err := m.Left.Close()
	if err2 := m.Right.Close(); err == nil {
		err = err2
	}
	return err
}

// HashJoin builds a hash table on the right input and probes with the
// left, preserving the left (probe) order. Only the build side is
// materialized (into the table directly — the right input is drained
// and closed during Open); probing streams.
type HashJoin struct {
	Left, Right Iterator
	LeftKey     int
	RightKey    int
	// Life, when set, charges every build-side row against the query
	// budget as the table is built.
	Life *Life

	table  map[int64][]Row
	probe  Row   // current left row
	bucket []Row // its matches
	bi     int
	opened bool

	// prebuilt, when set (morsel segments only), is a build table shared
	// across morsel pipelines: Open adopts it instead of draining Right
	// (which is then nil), and the rows were already charged once at
	// exchange setup.
	prebuilt map[int64][]Row

	alloc rowAlloc // chunked allocator for output rows
}

// Open implements Iterator.
func (h *HashJoin) Open() error {
	if h.prebuilt != nil {
		h.table = h.prebuilt
	} else {
		if err := h.Right.Open(); err != nil {
			return err
		}
		h.table = make(map[int64][]Row)
		for {
			row, ok, err := h.Right.Next()
			if err != nil {
				h.Right.Close()
				return err
			}
			if !ok {
				break
			}
			if err := h.Life.holdRow(row); err != nil {
				h.Right.Close()
				return err
			}
			k := row[h.RightKey]
			h.table[k] = append(h.table[k], row)
		}
		if err := h.Right.Close(); err != nil {
			return err
		}
	}
	h.probe, h.bucket, h.bi = nil, nil, 0
	if err := h.Left.Open(); err != nil {
		return err
	}
	h.opened = true
	return nil
}

// Next implements Iterator.
func (h *HashJoin) Next() (Row, bool, error) {
	for {
		if h.bi < len(h.bucket) {
			r := h.alloc.concat(h.probe, h.bucket[h.bi])
			h.bi++
			return r, true, nil
		}
		left, ok, err := h.Left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		h.probe = left
		h.bucket = h.table[left[h.LeftKey]]
		h.bi = 0
	}
}

// Close implements Iterator.
func (h *HashJoin) Close() error {
	h.table, h.probe, h.bucket = nil, nil, nil
	if h.opened {
		h.opened = false
		return h.Left.Close()
	}
	return nil
}

// NestedLoopJoin materializes the inner input and scans it per outer
// row, joining on an arbitrary predicate over (outer, inner). Matches
// are emitted lazily as the inner scan advances.
type NestedLoopJoin struct {
	Outer, Inner Iterator
	Pred         func(outer, inner Row) bool
	// Life, when set, charges the materialized inner input against the
	// query budget.
	Life *Life

	inner  []Row
	outer  Row
	ii     int
	opened bool

	// preloaded, when set (morsel segments only), is the materialized
	// inner shared across morsel pipelines: Open adopts it instead of
	// draining Inner (which is then nil); charged once at exchange setup.
	preloaded []Row

	alloc rowAlloc // chunked allocator for output rows
}

// Open implements Iterator.
func (n *NestedLoopJoin) Open() error {
	if n.preloaded != nil {
		n.inner = n.preloaded
	} else {
		if err := n.Inner.Open(); err != nil {
			n.Inner.Close()
			return err
		}
		var rows []Row
		for {
			row, ok, err := n.Inner.Next()
			if err != nil {
				n.Inner.Close()
				return err
			}
			if !ok {
				break
			}
			if err := n.Life.holdRow(row); err != nil {
				n.Inner.Close()
				return err
			}
			rows = append(rows, row)
		}
		if err := n.Inner.Close(); err != nil {
			return err
		}
		n.inner = rows
	}
	n.outer, n.ii = nil, 0
	if err := n.Outer.Open(); err != nil {
		return err
	}
	n.opened = true
	return nil
}

// Next implements Iterator.
func (n *NestedLoopJoin) Next() (Row, bool, error) {
	for {
		if n.outer != nil {
			for n.ii < len(n.inner) {
				inner := n.inner[n.ii]
				n.ii++
				if n.Pred(n.outer, inner) {
					return n.alloc.concat(n.outer, inner), true, nil
				}
			}
		}
		outer, ok, err := n.Outer.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		n.outer = outer
		n.ii = 0
	}
}

// Close implements Iterator.
func (n *NestedLoopJoin) Close() error {
	n.inner, n.outer = nil, nil
	if n.opened {
		n.opened = false
		return n.Outer.Close()
	}
	return nil
}

// concatRows returns a ++ b in a fresh row.
func concatRows(a, b Row) Row {
	out := make(Row, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

// rowAlloc chunk sizes (in int64s): chunks start small so short-lived
// operator instances (morsel pipelines) don't over-allocate, and grow
// geometrically so long streams amortize allocator round-trips. The
// ceiling is large relative to a whole-batch slab carve (~80 KiB at
// the default batch size) so the stranded chunk tail stays a few
// percent — per-batch dedicated allocations measured ~9 ms/op on
// orders/tpcr-xl in malloc+memclr alone.
const (
	rowAllocChunkMin = 512    // 4 KiB
	rowAllocChunkMax = 262144 // 2 MiB
)

// rowAlloc carves output rows from pointer-free chunks instead of
// allocating each row separately — join outputs dominate allocation
// count otherwise, and []int64 chunks cost the garbage collector
// nothing to scan. Rows stay valid after the allocator is gone; they
// alias the chunks. Not safe for concurrent use: each operator
// instance owns its allocator.
type rowAlloc struct {
	buf  Row
	grow int // next chunk size
}

// ensure makes the current chunk hold at least n more int64s, starting
// a fresh (geometrically grown) chunk when it doesn't.
func (al *rowAlloc) ensure(n int) {
	if len(al.buf) >= n {
		return
	}
	switch {
	case al.grow == 0:
		al.grow = rowAllocChunkMin
	case al.grow < rowAllocChunkMax:
		al.grow <<= 1
	}
	sz := al.grow
	if n > sz {
		sz = n
	}
	al.buf = make(Row, sz)
}

// carve returns one blank n-wide slice cut from the current chunk; the
// caller fills every column. Whole-batch slabs (vecRows) carve just
// like single rows — the chunk ceiling keeps the stranded tail small.
func (al *rowAlloc) carve(n int) Row {
	al.ensure(n)
	out := al.buf[:n:n]
	al.buf = al.buf[n:]
	return out
}

// concat returns a ++ b carved from the current chunk.
func (al *rowAlloc) concat(a, b Row) Row {
	out := al.carve(len(a) + len(b))
	copy(out, a)
	copy(out[len(a):], b)
	return out
}

// concatN returns pieces[0] ++ ... ++ pieces[len-1] (total width n)
// carved from the current chunk.
func (al *rowAlloc) concatN(pieces []Row, n int) Row {
	out := al.carve(n)
	o := 0
	for _, p := range pieces {
		copy(out[o:], p)
		o += len(p)
	}
	return out
}

// Agg selects the aggregate computed by the group operators.
type Agg uint8

const (
	// AggCount counts rows per group.
	AggCount Agg = iota
	// AggSum sums the AggCol per group.
	AggSum
	// AggMin keeps the minimum of AggCol per group.
	AggMin
	// AggMax keeps the maximum of AggCol per group.
	AggMax
	// AggAvg averages AggCol per group (integer semantics: sum/count,
	// truncated toward zero).
	AggAvg
)

// AggSpec is one aggregate of a group operator's output: the function
// and its input column (ignored for AggCount).
type AggSpec struct {
	Fn  Agg
	Col int
}

// normalizeAggs resolves a group operator's aggregate list: the Aggs
// slice when set, else the legacy single (Agg, AggCol) pair — so
// existing single-aggregate call sites keep working unchanged.
func normalizeAggs(aggs []AggSpec, agg Agg, aggCol int) []AggSpec {
	if len(aggs) > 0 {
		return aggs
	}
	return []AggSpec{{Fn: agg, Col: aggCol}}
}

// groupAcc is the shared per-group accumulator of the streaming group
// operators: one running value per aggregate plus the shared row count
// (count(*) and the divisor of avg).
type groupAcc struct {
	cur     Row
	accs    []int64
	count   int64
	started bool
}

func (g *groupAcc) start(row Row, specs []AggSpec) {
	g.cur = row
	g.started = true
	g.count = 1
	if cap(g.accs) < len(specs) {
		g.accs = make([]int64, len(specs))
	} else {
		g.accs = g.accs[:len(specs)]
	}
	for i, s := range specs {
		if s.Fn == AggCount {
			g.accs[i] = 0
		} else {
			g.accs[i] = row[s.Col]
		}
	}
}

func (g *groupAcc) add(row Row, specs []AggSpec) {
	g.count++
	for i, s := range specs {
		switch s.Fn {
		case AggSum, AggAvg:
			g.accs[i] += row[s.Col]
		case AggMin:
			if v := row[s.Col]; v < g.accs[i] {
				g.accs[i] = v
			}
		case AggMax:
			if v := row[s.Col]; v > g.accs[i] {
				g.accs[i] = v
			}
		}
	}
}

func (g *groupAcc) emit(keys []int, specs []AggSpec) Row {
	out := make(Row, 0, len(keys)+len(specs))
	for _, k := range keys {
		out = append(out, g.cur[k])
	}
	for i, s := range specs {
		switch s.Fn {
		case AggCount:
			out = append(out, g.count)
		case AggAvg:
			out = append(out, g.accs[i]/g.count)
		default:
			out = append(out, g.accs[i])
		}
	}
	return out
}

// GroupSorted groups an input already sorted on Keys; output rows are
// the key values followed by the aggregate. It exploits (and preserves)
// the input ordering — the operator order optimization economizes for —
// and streams: one accumulator, groups emitted as the stream closes
// them.
type GroupSorted struct {
	In     Iterator
	Keys   []int
	Agg    Agg
	AggCol int
	// Aggs, when set, lists the aggregates to compute (select-list
	// order); it overrides the single Agg/AggCol pair.
	Aggs []AggSpec

	g      groupAcc
	specs  []AggSpec
	opened bool
	prev   Row // sortedness check
}

// Open implements Iterator.
func (g *GroupSorted) Open() error {
	g.g, g.prev = groupAcc{}, nil
	g.specs = normalizeAggs(g.Aggs, g.Agg, g.AggCol)
	g.opened = true
	return g.In.Open()
}

// Next implements Iterator.
func (g *GroupSorted) Next() (Row, bool, error) {
	for {
		row, ok, err := g.In.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			if g.g.started {
				g.g.started = false
				return g.g.emit(g.Keys, g.specs), true, nil
			}
			return nil, false, nil
		}
		if g.prev != nil && lessByKeys(row, g.prev, g.Keys) {
			return nil, false, fmt.Errorf("exec: sorted grouping over unsorted input")
		}
		g.prev = row
		if g.g.started && sameKeys(g.g.cur, row, g.Keys) {
			g.g.add(row, g.specs)
			continue
		}
		if g.g.started {
			out := g.g.emit(g.Keys, g.specs)
			g.g.start(row, g.specs)
			return out, true, nil
		}
		g.g.start(row, g.specs)
	}
}

func sameKeys(a, b Row, keys []int) bool {
	for _, k := range keys {
		if a[k] != b[k] {
			return false
		}
	}
	return true
}

// Close implements Iterator.
func (g *GroupSorted) Close() error {
	if g.opened {
		g.opened = false
		return g.In.Close()
	}
	return nil
}

// GroupClustered groups a stream whose equal grouping values are
// adjacent (clustered) without requiring sortedness — the grouping
// extension's streaming operator. It validates the clustering: if a
// key group reappears after being closed, the input was not clustered
// and Next returns an error. The seen set uses comparable int64-tuple
// keys (see key.go), not per-group byte strings.
type GroupClustered struct {
	In     Iterator
	Keys   []int
	Agg    Agg
	AggCol int
	// Aggs, when set, lists the aggregates to compute (select-list
	// order); it overrides the single Agg/AggCol pair.
	Aggs []AggSpec
	// Life, when set, charges the growing seen set (one entry per
	// closed group) against the query budget.
	Life *Life

	g      groupAcc
	specs  []AggSpec
	opened bool
	seen   seenSet
}

// Open implements Iterator.
func (g *GroupClustered) Open() error {
	g.g = groupAcc{}
	g.specs = normalizeAggs(g.Aggs, g.Agg, g.AggCol)
	g.seen = newSeenSet(len(g.Keys))
	g.opened = true
	return g.In.Open()
}

// Next implements Iterator.
func (g *GroupClustered) Next() (Row, bool, error) {
	for {
		row, ok, err := g.In.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			if g.g.started {
				g.g.started = false
				return g.g.emit(g.Keys, g.specs), true, nil
			}
			return nil, false, nil
		}
		if g.g.started && sameKeys(g.g.cur, row, g.Keys) {
			g.g.add(row, g.specs)
			continue
		}
		if !g.seen.insert(row, g.Keys) {
			return nil, false, fmt.Errorf("exec: clustered grouping over non-clustered input (group reappeared)")
		}
		if err := g.Life.hold(1, int64(len(g.Keys))*8+rowOverheadBytes); err != nil {
			return nil, false, err
		}
		if g.g.started {
			out := g.g.emit(g.Keys, g.specs)
			g.g.start(row, g.specs)
			return out, true, nil
		}
		g.g.start(row, g.specs)
	}
}

// Close implements Iterator.
func (g *GroupClustered) Close() error {
	g.seen = seenSet{}
	if g.opened {
		g.opened = false
		return g.In.Close()
	}
	return nil
}

// GroupHash groups by hashing; output order is unspecified (insertion
// order here for determinism, but callers must not rely on it — the
// plan generator models hash grouping as order-destroying). The table
// is built directly from the input stream with comparable int64-tuple
// keys; nothing is materialized besides the per-group accumulators.
type GroupHash struct {
	In     Iterator
	Keys   []int
	Agg    Agg
	AggCol int
	// Aggs, when set, lists the aggregates to compute (select-list
	// order); it overrides the single Agg/AggCol pair.
	Aggs []AggSpec
	// Life, when set, charges every distinct group's accumulator (which
	// pins its first input row) against the query budget.
	Life *Life

	groups groupTable
	specs  []AggSpec
	pos    int
	opened bool
}

// Open implements Iterator.
func (g *GroupHash) Open() error {
	if err := g.In.Open(); err != nil {
		return err
	}
	g.opened = true
	g.specs = normalizeAggs(g.Aggs, g.Agg, g.AggCol)
	g.groups = newGroupTable(len(g.Keys))
	g.pos = 0
	for {
		row, ok, err := g.In.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		acc, fresh := g.groups.lookup(row, g.Keys)
		if fresh {
			if err := g.Life.holdRow(row); err != nil {
				return err
			}
			acc.start(row, g.specs)
		} else {
			acc.add(row, g.specs)
		}
	}
}

// Next implements Iterator.
func (g *GroupHash) Next() (Row, bool, error) {
	accs := g.groups.order
	if g.pos >= len(accs) {
		return nil, false, nil
	}
	r := accs[g.pos].emit(g.Keys, g.specs)
	g.pos++
	return r, true, nil
}

// Close implements Iterator.
func (g *GroupHash) Close() error {
	g.groups = groupTable{}
	if g.opened {
		g.opened = false
		return g.In.Close()
	}
	return nil
}

// Limit yields at most N input rows, then stops pulling — the top-k
// early-out the limit-aware costing prices. On reaching the limit it
// quiesces the pipeline's Life so background producers (morsel workers
// feeding an exchange below) stop doing work that can no longer reach
// the output; quiescence is a graceful stop, not an abort, so the
// already-emitted prefix stays a successful result.
type Limit struct {
	In Iterator
	N  int64
	// Life, when set, is quiesced once the limit is reached.
	Life *Life

	n      int64
	opened bool
}

// Open implements Iterator.
func (l *Limit) Open() error {
	l.n = 0
	err := l.In.Open()
	l.opened = err == nil
	return err
}

// Next implements Iterator.
func (l *Limit) Next() (Row, bool, error) {
	if l.n >= l.N {
		l.Life.quiesce()
		return nil, false, nil
	}
	row, ok, err := l.In.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.n++
	if l.n >= l.N {
		l.Life.quiesce()
	}
	return row, true, nil
}

// Close implements Iterator.
func (l *Limit) Close() error {
	if !l.opened {
		return nil
	}
	l.opened = false
	return l.In.Close()
}

// SatisfiesOrdering reports whether the row stream satisfies the logical
// ordering given by the column sequence — the §2 condition: rows are
// non-decreasing lexicographically on the columns.
func SatisfiesOrdering(rows []Row, cols []int) bool {
	for i := 1; i < len(rows); i++ {
		if lessByKeys(rows[i], rows[i-1], cols) {
			return false
		}
	}
	return true
}
