// Package exec is a small Volcano-style execution engine over in-memory
// tables: scans, filters, sorts, merge/hash/nested-loop joins and
// grouping. Its role in this reproduction is validation — the property
// tests run real tuple streams through operator pipelines and check that
// every logical ordering the DFSM framework claims (and every functional
// dependency it consumed) physically holds on the stream.
package exec

import (
	"fmt"
	"sort"
)

// Row is one tuple; values are int64 (strings are dictionary-coded by
// the data generators, dates are day numbers).
type Row []int64

// Iterator is the Volcano operator interface.
type Iterator interface {
	// Open prepares the iterator; it must be called before Next.
	Open() error
	// Next returns the next row, or ok=false at end of stream.
	Next() (row Row, ok bool, err error)
	// Close releases resources. Close after Open is mandatory.
	Close() error
}

// Collect drains it and returns all rows.
func Collect(it Iterator) ([]Row, error) {
	if err := it.Open(); err != nil {
		return nil, err
	}
	defer it.Close()
	var out []Row
	for {
		row, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, row)
	}
}

// Scan yields the given rows.
type Scan struct {
	Rows []Row
	pos  int
}

// NewScan returns a scan over rows.
func NewScan(rows []Row) *Scan { return &Scan{Rows: rows} }

// Open implements Iterator.
func (s *Scan) Open() error { s.pos = 0; return nil }

// Next implements Iterator.
func (s *Scan) Next() (Row, bool, error) {
	if s.pos >= len(s.Rows) {
		return nil, false, nil
	}
	r := s.Rows[s.pos]
	s.pos++
	return r, true, nil
}

// Close implements Iterator.
func (s *Scan) Close() error { return nil }

// Filter yields input rows satisfying Pred.
type Filter struct {
	In   Iterator
	Pred func(Row) bool
}

// Open implements Iterator.
func (f *Filter) Open() error { return f.In.Open() }

// Next implements Iterator.
func (f *Filter) Next() (Row, bool, error) {
	for {
		row, ok, err := f.In.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if f.Pred(row) {
			return row, true, nil
		}
	}
}

// Close implements Iterator.
func (f *Filter) Close() error { return f.In.Close() }

// Project maps each input row through Cols.
type Project struct {
	In   Iterator
	Cols []int
}

// Open implements Iterator.
func (p *Project) Open() error { return p.In.Open() }

// Next implements Iterator.
func (p *Project) Next() (Row, bool, error) {
	row, ok, err := p.In.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(Row, len(p.Cols))
	for i, c := range p.Cols {
		out[i] = row[c]
	}
	return out, true, nil
}

// Close implements Iterator.
func (p *Project) Close() error { return p.In.Close() }

// Sort materializes its input and yields it ordered by Keys (ascending,
// stable).
type Sort struct {
	In   Iterator
	Keys []int

	rows []Row
	pos  int
}

// Open implements Iterator.
func (s *Sort) Open() error {
	rows, err := Collect(s.In)
	if err != nil {
		return err
	}
	sort.SliceStable(rows, func(i, j int) bool {
		return lessByKeys(rows[i], rows[j], s.Keys)
	})
	s.rows = rows
	s.pos = 0
	return nil
}

// Next implements Iterator.
func (s *Sort) Next() (Row, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, true, nil
}

// Close implements Iterator.
func (s *Sort) Close() error { s.rows = nil; return nil }

func lessByKeys(a, b Row, keys []int) bool {
	for _, k := range keys {
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return false
}

// MergeJoin equi-joins two inputs sorted on their key columns; output
// rows are left ++ right. Duplicate key groups produce the full cross
// product with the outer (left) order preserved — the ordering behaviour
// the plan generator relies on.
type MergeJoin struct {
	Left, Right Iterator
	LeftKey     int
	RightKey    int

	leftRows  []Row
	rightRows []Row
	out       []Row
	pos       int
}

// Open implements Iterator.
func (m *MergeJoin) Open() error {
	var err error
	if m.leftRows, err = Collect(m.Left); err != nil {
		return err
	}
	if m.rightRows, err = Collect(m.Right); err != nil {
		return err
	}
	if !sorted(m.leftRows, m.LeftKey) {
		return fmt.Errorf("exec: merge join left input not sorted on column %d", m.LeftKey)
	}
	if !sorted(m.rightRows, m.RightKey) {
		return fmt.Errorf("exec: merge join right input not sorted on column %d", m.RightKey)
	}
	m.out = m.out[:0]
	i, j := 0, 0
	for i < len(m.leftRows) && j < len(m.rightRows) {
		lv := m.leftRows[i][m.LeftKey]
		rv := m.rightRows[j][m.RightKey]
		switch {
		case lv < rv:
			i++
		case lv > rv:
			j++
		default:
			// Group bounds.
			jEnd := j
			for jEnd < len(m.rightRows) && m.rightRows[jEnd][m.RightKey] == rv {
				jEnd++
			}
			for ; i < len(m.leftRows) && m.leftRows[i][m.LeftKey] == lv; i++ {
				for k := j; k < jEnd; k++ {
					m.out = append(m.out, concatRows(m.leftRows[i], m.rightRows[k]))
				}
			}
			j = jEnd
		}
	}
	m.pos = 0
	return nil
}

func sorted(rows []Row, key int) bool {
	for i := 1; i < len(rows); i++ {
		if rows[i-1][key] > rows[i][key] {
			return false
		}
	}
	return true
}

func concatRows(a, b Row) Row {
	out := make(Row, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

// Next implements Iterator.
func (m *MergeJoin) Next() (Row, bool, error) {
	if m.pos >= len(m.out) {
		return nil, false, nil
	}
	r := m.out[m.pos]
	m.pos++
	return r, true, nil
}

// Close implements Iterator.
func (m *MergeJoin) Close() error { m.out, m.leftRows, m.rightRows = nil, nil, nil; return nil }

// HashJoin builds a hash table on the right input and probes with the
// left, preserving the left (probe) order.
type HashJoin struct {
	Left, Right Iterator
	LeftKey     int
	RightKey    int

	table   map[int64][]Row
	pending []Row
	opened  bool
}

// Open implements Iterator.
func (h *HashJoin) Open() error {
	rights, err := Collect(h.Right)
	if err != nil {
		return err
	}
	h.table = make(map[int64][]Row)
	for _, r := range rights {
		h.table[r[h.RightKey]] = append(h.table[r[h.RightKey]], r)
	}
	h.pending = nil
	h.opened = true
	return h.Left.Open()
}

// Next implements Iterator.
func (h *HashJoin) Next() (Row, bool, error) {
	for {
		if len(h.pending) > 0 {
			r := h.pending[0]
			h.pending = h.pending[1:]
			return r, true, nil
		}
		left, ok, err := h.Left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		for _, r := range h.table[left[h.LeftKey]] {
			h.pending = append(h.pending, concatRows(left, r))
		}
	}
}

// Close implements Iterator.
func (h *HashJoin) Close() error {
	h.table = nil
	if h.opened {
		h.opened = false
		return h.Left.Close()
	}
	return nil
}

// NestedLoopJoin materializes the inner input and scans it per outer
// row, joining on an arbitrary predicate over (outer, inner).
type NestedLoopJoin struct {
	Outer, Inner Iterator
	Pred         func(outer, inner Row) bool

	inner   []Row
	pending []Row
	opened  bool
}

// Open implements Iterator.
func (n *NestedLoopJoin) Open() error {
	rows, err := Collect(n.Inner)
	if err != nil {
		return err
	}
	n.inner = rows
	n.pending = nil
	n.opened = true
	return n.Outer.Open()
}

// Next implements Iterator.
func (n *NestedLoopJoin) Next() (Row, bool, error) {
	for {
		if len(n.pending) > 0 {
			r := n.pending[0]
			n.pending = n.pending[1:]
			return r, true, nil
		}
		outer, ok, err := n.Outer.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		for _, inner := range n.inner {
			if n.Pred(outer, inner) {
				n.pending = append(n.pending, concatRows(outer, inner))
			}
		}
	}
}

// Close implements Iterator.
func (n *NestedLoopJoin) Close() error {
	n.inner = nil
	if n.opened {
		n.opened = false
		return n.Outer.Close()
	}
	return nil
}

// Agg selects the aggregate computed by the group operators.
type Agg uint8

const (
	// AggCount counts rows per group.
	AggCount Agg = iota
	// AggSum sums the AggCol per group.
	AggSum
	// AggMin keeps the minimum of AggCol per group.
	AggMin
)

// GroupSorted groups an input already sorted on Keys; output rows are
// the key values followed by the aggregate. It exploits (and preserves)
// the input ordering — the operator order optimization economizes for.
type GroupSorted struct {
	In     Iterator
	Keys   []int
	Agg    Agg
	AggCol int

	cur     Row
	acc     int64
	started bool
	opened  bool
	prev    Row // sortedness check
}

// Open implements Iterator.
func (g *GroupSorted) Open() error {
	g.cur, g.prev, g.started = nil, nil, false
	g.opened = true
	return g.In.Open()
}

// Next implements Iterator.
func (g *GroupSorted) Next() (Row, bool, error) {
	for {
		row, ok, err := g.In.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			if g.started {
				g.started = false
				return g.emit(), true, nil
			}
			return nil, false, nil
		}
		if g.prev != nil && lessByKeys(row, g.prev, g.Keys) {
			return nil, false, fmt.Errorf("exec: sorted grouping over unsorted input")
		}
		g.prev = row
		if g.started && sameKeys(g.cur, row, g.Keys) {
			g.accumulate(row)
			continue
		}
		if g.started {
			out := g.emit()
			g.startGroup(row)
			return out, true, nil
		}
		g.startGroup(row)
	}
}

func (g *GroupSorted) startGroup(row Row) {
	g.cur = row
	g.started = true
	switch g.Agg {
	case AggCount:
		g.acc = 1
	default:
		g.acc = row[g.AggCol]
	}
}

func (g *GroupSorted) accumulate(row Row) {
	switch g.Agg {
	case AggCount:
		g.acc++
	case AggSum:
		g.acc += row[g.AggCol]
	case AggMin:
		if row[g.AggCol] < g.acc {
			g.acc = row[g.AggCol]
		}
	}
}

func (g *GroupSorted) emit() Row {
	out := make(Row, 0, len(g.Keys)+1)
	for _, k := range g.Keys {
		out = append(out, g.cur[k])
	}
	return append(out, g.acc)
}

func sameKeys(a, b Row, keys []int) bool {
	for _, k := range keys {
		if a[k] != b[k] {
			return false
		}
	}
	return true
}

// Close implements Iterator.
func (g *GroupSorted) Close() error {
	if g.opened {
		g.opened = false
		return g.In.Close()
	}
	return nil
}

// GroupClustered groups a stream whose equal grouping values are
// adjacent (clustered) without requiring sortedness — the grouping
// extension's streaming operator. It validates the clustering: if a
// key group reappears after being closed, the input was not clustered
// and Next returns an error.
type GroupClustered struct {
	In     Iterator
	Keys   []int
	Agg    Agg
	AggCol int

	cur     Row
	acc     int64
	started bool
	opened  bool
	seen    map[string]bool
}

// Open implements Iterator.
func (g *GroupClustered) Open() error {
	g.cur, g.started = nil, false
	g.seen = make(map[string]bool)
	g.opened = true
	return g.In.Open()
}

func (g *GroupClustered) key(row Row) string {
	kb := make([]byte, 0, len(g.Keys)*9)
	for _, k := range g.Keys {
		v := row[k]
		for s := 0; s < 64; s += 8 {
			kb = append(kb, byte(v>>uint(s)))
		}
		kb = append(kb, ',')
	}
	return string(kb)
}

// Next implements Iterator.
func (g *GroupClustered) Next() (Row, bool, error) {
	for {
		row, ok, err := g.In.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			if g.started {
				g.started = false
				return g.emit(), true, nil
			}
			return nil, false, nil
		}
		if g.started && sameKeys(g.cur, row, g.Keys) {
			g.accumulate(row)
			continue
		}
		k := g.key(row)
		if g.seen[k] {
			return nil, false, fmt.Errorf("exec: clustered grouping over non-clustered input (group reappeared)")
		}
		g.seen[k] = true
		if g.started {
			out := g.emit()
			g.startGroup(row)
			return out, true, nil
		}
		g.startGroup(row)
	}
}

func (g *GroupClustered) startGroup(row Row) {
	g.cur = row
	g.started = true
	switch g.Agg {
	case AggCount:
		g.acc = 1
	default:
		g.acc = row[g.AggCol]
	}
}

func (g *GroupClustered) accumulate(row Row) {
	switch g.Agg {
	case AggCount:
		g.acc++
	case AggSum:
		g.acc += row[g.AggCol]
	case AggMin:
		if row[g.AggCol] < g.acc {
			g.acc = row[g.AggCol]
		}
	}
}

func (g *GroupClustered) emit() Row {
	out := make(Row, 0, len(g.Keys)+1)
	for _, k := range g.Keys {
		out = append(out, g.cur[k])
	}
	return append(out, g.acc)
}

// Close implements Iterator.
func (g *GroupClustered) Close() error {
	g.seen = nil
	if g.opened {
		g.opened = false
		return g.In.Close()
	}
	return nil
}

// GroupHash groups by hashing; output order is unspecified (sorted by
// key here for determinism, but callers must not rely on it — the plan
// generator models hash grouping as order-destroying).
type GroupHash struct {
	In     Iterator
	Keys   []int
	Agg    Agg
	AggCol int

	out []Row
	pos int
}

// Open implements Iterator.
func (g *GroupHash) Open() error {
	rows, err := Collect(g.In)
	if err != nil {
		return err
	}
	type group struct {
		key Row
		acc int64
		n   int
	}
	groups := map[string]*group{}
	var order []string
	for _, row := range rows {
		kb := make([]byte, 0, len(g.Keys)*9)
		for _, k := range g.Keys {
			v := row[k]
			for s := 0; s < 64; s += 8 {
				kb = append(kb, byte(v>>uint(s)))
			}
			kb = append(kb, ',')
		}
		ks := string(kb)
		gr, ok := groups[ks]
		if !ok {
			key := make(Row, len(g.Keys))
			for i, k := range g.Keys {
				key[i] = row[k]
			}
			gr = &group{key: key}
			switch g.Agg {
			case AggCount:
				gr.acc = 0
			case AggMin:
				gr.acc = row[g.AggCol]
			}
			groups[ks] = gr
			order = append(order, ks)
		}
		switch g.Agg {
		case AggCount:
			gr.acc++
		case AggSum:
			gr.acc += row[g.AggCol]
		case AggMin:
			if row[g.AggCol] < gr.acc {
				gr.acc = row[g.AggCol]
			}
		}
		gr.n++
	}
	g.out = g.out[:0]
	for _, ks := range order {
		gr := groups[ks]
		g.out = append(g.out, append(append(Row{}, gr.key...), gr.acc))
	}
	g.pos = 0
	return nil
}

// Next implements Iterator.
func (g *GroupHash) Next() (Row, bool, error) {
	if g.pos >= len(g.out) {
		return nil, false, nil
	}
	r := g.out[g.pos]
	g.pos++
	return r, true, nil
}

// Close implements Iterator.
func (g *GroupHash) Close() error { g.out = nil; return nil }

// SatisfiesOrdering reports whether the row stream satisfies the logical
// ordering given by the column sequence — the §2 condition: rows are
// non-decreasing lexicographically on the columns.
func SatisfiesOrdering(rows []Row, cols []int) bool {
	for i := 1; i < len(rows); i++ {
		if lessByKeys(rows[i], rows[i-1], cols) {
			return false
		}
	}
	return true
}
