package exec

import (
	"testing"
	"time"

	"orderopt/internal/plan"
	"orderopt/internal/query"
	"orderopt/internal/querygen"
	"orderopt/internal/tpcr"
)

// ordersCustomerGraph builds orders ⋈ customer ordered by o_orderkey —
// a stream whose sort key is unique (one customer per order), so the
// k-prefix of the result is the same row sequence whatever plan
// produced it. That determinism is what lets the tests below compare a
// limited run against a slice of the unlimited reference.
func ordersCustomerGraph(t *testing.T) *query.Graph {
	t.Helper()
	c := tpcr.Schema()
	g := &query.Graph{}
	orders, _ := c.Table("orders")
	cust, _ := c.Table("customer")
	ro := g.AddRelation("orders", orders)
	rc := g.AddRelation("customer", cust)
	err := g.AddJoin(
		query.ColumnRef{Rel: ro, Col: orders.ColumnIndex("o_custkey")},
		query.ColumnRef{Rel: rc, Col: cust.ColumnIndex("c_custkey")},
	)
	if err != nil {
		t.Fatal(err)
	}
	g.OrderBy = []query.ColumnRef{{Rel: ro, Col: orders.ColumnIndex("o_orderkey")}}
	return g
}

// TestLimitEdgeCases drives LIMIT through its boundary values — an
// explicit LIMIT 0, a limit far beyond the result size, a limit equal
// to it, and an ordinary top-k — asserting each emits exactly the
// k-prefix of the unlimited ordered result.
func TestLimitEdgeCases(t *testing.T) {
	reg := TPCRRegistry()
	ds, ok := reg.Get("tpcr-small")
	if !ok {
		t.Fatal("no tpcr-small dataset")
	}

	// Unlimited reference, canonicalized so plans with different column
	// layouts compare positionally. Canonicalize keeps row order.
	ref := ordersCustomerGraph(t)
	a, best := planParallel(t, ds, ref, 1)
	want, wantSchema, err := ds.Runner(a).Run(best)
	if err != nil {
		t.Fatal(err)
	}
	wantCanon := Canonicalize(want, wantSchema, ref)
	total := len(want)
	if total == 0 {
		t.Fatal("reference result is empty; the dataset shrank under the test")
	}

	cases := []struct {
		name     string
		limit    int
		hasLimit bool
		want     int
	}{
		{"limit-0", 0, true, 0},
		{"limit-1", 1, false, 1},
		{"top-7", 7, false, 7},
		{"limit-equals-rows", total, false, total},
		{"limit-beyond-rows", total + 1000, false, total},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := ordersCustomerGraph(t)
			g.Limit = tc.limit
			g.HasLimit = tc.hasLimit
			a, best := planParallel(t, ds, g, 1)
			if findOp(best, plan.Limit) == nil {
				t.Fatalf("optimizer planned no Limit operator:\n%s", best)
			}
			rows, schema, err := ds.Runner(a).Run(best)
			if err != nil {
				t.Fatal(err)
			}
			if len(rows) != tc.want {
				t.Fatalf("got %d rows, want %d", len(rows), tc.want)
			}
			if !rowsEqual(Canonicalize(rows, schema, g), wantCanon[:tc.want]) {
				t.Fatalf("limited result is not the %d-prefix of the ordered reference", tc.want)
			}
		})
	}
}

// TestLimitMidDuplicateGroupMergeJoin cuts a limit in the middle of a
// merge join's duplicate-key group — the join is mid cross-product when
// the limit quiesces, the spot where early-out interacts with the
// join's buffered right-group state. Every cut point must emit exactly
// the k-prefix of the unlimited run of the same plan.
func TestLimitMidDuplicateGroupMergeJoin(t *testing.T) {
	_, g, err := querygen.Generate(querygen.Spec{
		Relations: 2, ExtraEdges: 0, Seed: 3, ColumnsPerTable: 2,
		SelectionProb: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := query.Analyze(g, query.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}

	pred := g.Edges[0].Preds[0]
	// Hand-built inputs, pre-sorted on the join columns, with duplicate
	// keys on both sides: key 1 joins 2×2, key 2 joins 2×1, key 3 joins
	// 1×1 — 7 output rows in groups of 4, 2 and 1.
	mk := func(col int, keys ...int64) [][]int64 {
		rows := make([][]int64, len(keys))
		for i, k := range keys {
			row := make([]int64, 2)
			row[col] = k
			row[1-col] = int64(100*(i+1)) + k
			rows[i] = row
		}
		return rows
	}
	data := map[string][][]int64{
		g.Relations[pred.Left.Rel].Table.Name:  mk(pred.Left.Col, 1, 1, 2, 2, 3),
		g.Relations[pred.Right.Rel].Table.Name: mk(pred.Right.Col, 1, 1, 2, 3),
	}

	join := &plan.Node{
		Op: plan.MergeJoin, Edge: 0, Pred: 0,
		Left:  &plan.Node{Op: plan.TableScan, Rel: pred.Left.Rel},
		Right: &plan.Node{Op: plan.TableScan, Rel: pred.Right.Rel},
	}
	runner := &Runner{A: a, Data: data}
	want, _, err := runner.Run(join)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 7 {
		t.Fatalf("unlimited merge join emitted %d rows, want 7; the fixture data drifted", len(want))
	}

	// Cut points: mid first group (3), at a group boundary (4), mid a
	// later group (5), and past the end (9).
	for _, k := range []int{3, 4, 5, 7, 9} {
		limited := &plan.Node{Op: plan.Limit, Limit: k, Left: join}
		got, _, err := (&Runner{A: a, Data: data}).Run(limited)
		if err != nil {
			t.Fatalf("limit %d: %v", k, err)
		}
		n := k
		if n > len(want) {
			n = len(want)
		}
		if !rowsEqual(got, want[:n]) {
			t.Fatalf("limit %d: got %d rows, not the %d-prefix of the unlimited join", k, len(got), n)
		}
	}
}

// delayIter sleeps once every 64 rows — the knob that makes the
// early-out test below deterministic by keeping morsel workers
// mid-stream when the limit fills, without paying the platform's
// per-sleep granularity floor on every row.
type delayIter struct {
	in Iterator
	d  time.Duration
	n  int
}

func (d *delayIter) Open() error { d.n = 0; return d.in.Open() }
func (d *delayIter) Next() (Row, bool, error) {
	if d.n++; d.n%64 == 0 {
		time.Sleep(d.d)
	}
	return d.in.Next()
}
func (d *delayIter) Close() error { return d.in.Close() }

// TestLimitEarlyOutUnderParallelExchanges pins the early-out contract
// at DOP > 1: when the top-level Limit fills, it quiesces the
// pipeline's Life and the sibling morsel workers feeding the exchange
// wind down — stop claiming morsels, abandon the one in hand — instead
// of producing output nobody will read. A graceful stop, not an abort:
// the emitted prefix is still a successful, ordered result.
//
// Exchange workers deliberately run ahead of the consumer (every
// result channel has capacity for every send), so without the quiesce
// check a limited run would still process every morsel in full. The
// hook slows morsel-level join output enough that the limit fills
// while later morsels are still in flight; the row counters then
// separate cleanly: ~all rows without cancellation, roughly the first
// worker round with it.
func TestLimitEarlyOutUnderParallelExchanges(t *testing.T) {
	reg := TPCRRegistry()
	ds, ok := reg.Get("tpcr-large")
	if !ok {
		t.Fatal("no tpcr-large dataset")
	}
	_, g, err := tpcr.OrderStreamGraph()
	if err != nil {
		t.Fatal(err)
	}
	a, best := planParallel(t, ds, g, 4)
	if findOp(best, plan.ExchangeMerge) == nil && findOp(best, plan.ExchangeUnion) == nil {
		t.Fatalf("optimizer chose no exchange at MaxDOP=4:\n%s", best)
	}
	if findOp(best, plan.MergeJoin) == nil {
		t.Fatalf("plan no longer merge-joins; the delay hook needs a new target:\n%s", best)
	}
	hook := func(op, detail string, it Iterator, life *Life) Iterator {
		if op == plan.MergeJoin.String() {
			return &delayIter{in: it, d: time.Millisecond}
		}
		return it
	}

	// Reference: the same hooked plan without a limit processes the
	// full join stream through the morsel-level merge joins.
	full := ds.Runner(a)
	full.MaxDOP = 4
	full.Hook = hook
	fp, err := full.Compile(best)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fp.Execute(); err != nil {
		t.Fatal(err)
	}
	fullJoin := opRows(t, fp, plan.MergeJoin)

	const k = 10
	limited := &plan.Node{Op: plan.Limit, Limit: k, Left: best, Card: k}
	r := ds.Runner(a)
	r.MaxDOP = 4
	r.Hook = hook
	p, err := r.Compile(limited)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := p.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != k {
		t.Fatalf("got %d rows, want %d", len(rows), k)
	}
	cols := make([]int, len(g.OrderBy))
	for i, c := range g.OrderBy {
		if cols[i] = colPos(p.Schema, c); cols[i] < 0 {
			t.Fatalf("ORDER BY column %v missing from output schema", c)
		}
	}
	if !SatisfiesOrdering(rows, cols) {
		t.Fatal("limited parallel result violates the ORDER BY")
	}
	if !p.Life.drained() {
		t.Fatal("reaching the limit did not quiesce the pipeline's Life")
	}
	// Every operator below the Limit is marked, so stats readers know
	// its Rows legitimately stopped short of EstRows.
	for _, op := range p.Ops {
		if op.Op == plan.Limit.String() {
			if op.Rows != k {
				t.Fatalf("Limit operator reports %d rows, want %d", op.Rows, k)
			}
			continue
		}
		if !op.Limited {
			t.Fatalf("operator %s under a Limit is not marked Limited", op.Op)
		}
	}
	// The sibling cancellation: the limited run's morsel joins must stop
	// well short of the full stream. Workers notice quiescence per
	// output row, so only the morsels already in flight when the limit
	// filled (at most one round of workers) keep contributing.
	gotJoin := opRows(t, p, plan.MergeJoin)
	if gotJoin*10 > fullJoin*9 {
		t.Fatalf("limited run joined %d rows vs %d unlimited — early-out did not stop the sibling workers",
			gotJoin, fullJoin)
	}
}

// opRows sums the row counters of every operator with the given op.
func opRows(t *testing.T, p *Pipeline, op plan.Op) int64 {
	t.Helper()
	var n int64
	found := false
	for _, o := range p.Ops {
		if o.Op == op.String() {
			n += o.Rows
			found = true
		}
	}
	if !found {
		t.Fatalf("pipeline has no %s operator", op)
	}
	return n
}
