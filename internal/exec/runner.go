package exec

import (
	"context"
	"fmt"
	"sort"
	"time"

	"orderopt/internal/order"
	"orderopt/internal/plan"
	"orderopt/internal/query"
)

// AggColumn is the schema entry of the aggregate column the group
// operators append after the grouping keys. Rel -1 never names a
// relation, so it cannot collide with a real column reference.
var AggColumn = query.ColumnRef{Rel: -1, Col: 0}

// Runner compiles optimizer plans into executable operator pipelines
// over in-memory tables. It is both the validation harness (a wrong
// ordering claim surfaces as a merge-join or grouping guard-rail error,
// and results must equal brute-force evaluation) and the execution
// backend behind the serving layer's /execute endpoint.
type Runner struct {
	A *query.Analysis
	// Dataset, when set, is the columnar data source (the normal case —
	// Dataset.Runner sets it): row operators read its cached row views,
	// vectorized operators slice its column vectors directly.
	Dataset *Dataset
	// Data maps table names to row-major rows (values aligned with the
	// catalog's column order) — the hand-rolled-fixture alternative to
	// Dataset, used by tests that construct runners directly.
	Data map[string][][]int64
	// Indexed optionally maps table name → index name → rows presorted
	// in index order (pairs with Data). When a presorted view exists —
	// here or on the Dataset — index scans stream it instead of sorting
	// at Open: the executor-level equivalent of an index existing, which
	// is what makes runtime sort avoidance measurable.
	Indexed map[string]map[string][][]int64
	// DisableTiming turns off per-operator wall-clock accounting (row
	// counters remain). The benchmark harness disables it so operator
	// timer overhead does not tint the measured runtimes.
	DisableTiming bool
	// Budget bounds what each compiled pipeline may materialize (zero
	// fields are unlimited); Accountant, when set, additionally charges
	// materialized rows against a memory budget shared across queries.
	Budget     Budget
	Accountant *Accountant
	// Hook, when set, wraps every operator as it is compiled — the
	// fault-injection seam (see internal/faultinject). It runs inside
	// the stats wrapper, so injected behavior shows up in the operator
	// counters like any other work. Inside exchange segments the hook
	// wraps every morsel instance, so faults fire inside workers too.
	Hook IterHook
	// MaxDOP, when > 0, caps the degree of parallelism of any exchange
	// in a compiled plan below what the optimizer planned — the
	// per-request maxDOP clamp of the serving layer.
	MaxDOP int
	// Vectorize compiles batch-at-a-time (vector) pipelines for the plan
	// subtrees the vectorized operators cover (see batch.go); everything
	// else falls back to the row path through an adapter. Off by
	// default; incompatible with Hook (fault injection needs the per-row
	// seam), which silently wins.
	Vectorize bool
	// BatchSize is the vector width of the batch path (0 means
	// DefaultBatchSize).
	BatchSize int
	// SpillBytes, when > 0, compiles every Sort as a spilling external
	// sort (see ExtSort): in-memory runs are bounded by this many bytes
	// (and by the query budget), spilled to disk and k-way merged.
	SpillBytes int64
	// SpillDir is where external sorts place their run files ("" means
	// the OS temp directory).
	SpillDir string

	equiv map[query.ColumnRef]int // lazily built column equivalence classes

	// rowViews/idxViews lazily cache the []Row views of Data and Indexed
	// so repeated compiles on one runner don't re-allocate a slice of
	// row headers per scan (a 40k-row view is ~1MB of headers). The
	// views alias the underlying rows, which no operator mutates.
	rowViews map[string][]Row
	idxViews map[string]map[string][]Row
	// sortedDriving caches index views the parallel tier had to sort
	// itself (no maintained view), keyed "table/index". Kept separate
	// from idxViews on purpose: serial index scans must keep paying
	// their per-execution Sort so rows-sorted accounting stays honest.
	sortedDriving map[string][]Row
	// hashViews caches hash-join build tables over bare base-table
	// scans for the parallel tier, keyed "table/view/keycol". Bucket
	// contents follow the scan's stream order, so fused probes emit the
	// exact serial match sequence.
	hashViews map[string]*hashView
	// colTables caches columnar transpositions of the row-major Data
	// fixture (runners over a Dataset use its tables directly).
	colTables map[string]*ColTable
}

// hashView is one cached build table. table is always populated (the
// composed morsel pipeline probes it); dense is an additional direct
// address accelerator the fused evaluator uses when the key domain is
// packed: bucket = dense[k-min].
type hashView struct {
	table map[int64][]Row
	dense [][]Row
	min   int64
}

// buildHashView returns (building and caching on first use) the build
// table over the given rows keyed on column col. When the observed key
// span is within 4x the row count the rows also get a direct-address
// bucket array, which replaces the map lookup on the fused hot path.
func (r *Runner) buildHashView(ck string, col int, rows []Row) *hashView {
	ck = fmt.Sprintf("%s/%d", ck, col)
	if hv, ok := r.hashViews[ck]; ok {
		return hv
	}
	hv := &hashView{table: make(map[int64][]Row, len(rows))}
	var min, max int64
	for i, row := range rows {
		k := row[col]
		hv.table[k] = append(hv.table[k], row)
		if i == 0 || k < min {
			min = k
		}
		if i == 0 || k > max {
			max = k
		}
	}
	if n := len(rows); n > 0 {
		if span := max - min + 1; span > 0 && span <= int64(4*n+16) {
			hv.min = min
			hv.dense = make([][]Row, span)
			for _, row := range rows {
				k := row[col] - min
				hv.dense[k] = append(hv.dense[k], row)
			}
		}
	}
	if r.hashViews == nil {
		r.hashViews = make(map[string]*hashView)
	}
	r.hashViews[ck] = hv
	return hv
}

// sortedIndexView returns (building and caching on first use) the rows
// of a table sorted in the given index order — the parallel tier's
// driving view when the dataset maintains no view for the index.
func (r *Runner) sortedIndexView(table, index string, raw []Row, keys []int) []Row {
	ck := table + "/" + index
	if rows, ok := r.sortedDriving[ck]; ok {
		return rows
	}
	rows := append(make([]Row, 0, len(raw)), raw...)
	sort.SliceStable(rows, func(i, j int) bool { return lessByKeys(rows[i], rows[j], keys) })
	if r.sortedDriving == nil {
		r.sortedDriving = make(map[string][]Row)
	}
	r.sortedDriving[ck] = rows
	return rows
}

// dataRows returns the []Row view of a table's rows: the dataset's
// cached view, or a per-runner cached conversion of the row-major Data
// fixture.
func (r *Runner) dataRows(name string) ([]Row, bool) {
	if r.Dataset != nil {
		ct, ok := r.Dataset.Tables[name]
		if !ok {
			return nil, false
		}
		return ct.RowView(), true
	}
	if rows, ok := r.rowViews[name]; ok {
		return rows, true
	}
	raw, ok := r.Data[name]
	if !ok {
		return nil, false
	}
	if r.rowViews == nil {
		r.rowViews = make(map[string][]Row)
	}
	rows := asRows(raw)
	r.rowViews[name] = rows
	return rows, true
}

// indexRows returns the []Row view of a maintained index's presorted
// rows, when the dataset maintains one.
func (r *Runner) indexRows(table, index string) ([]Row, bool) {
	if r.Dataset != nil {
		v := r.Dataset.Views[table][index]
		if v == nil {
			return nil, false
		}
		return v.RowView(), true
	}
	if rows, ok := r.idxViews[table][index]; ok {
		return rows, true
	}
	sorted := r.Indexed[table][index]
	if sorted == nil {
		return nil, false
	}
	if r.idxViews == nil {
		r.idxViews = make(map[string]map[string][]Row)
	}
	m := r.idxViews[table]
	if m == nil {
		m = make(map[string][]Row)
		r.idxViews[table] = m
	}
	rows := asRows(sorted)
	m[index] = rows
	return rows, true
}

// colTable returns the columnar storage of a table: the dataset's, or
// a per-runner cached transposition of the Data fixture (so vectorized
// execution also works over hand-rolled test data).
func (r *Runner) colTable(name string) (*ColTable, bool) {
	if r.Dataset != nil {
		ct, ok := r.Dataset.Tables[name]
		return ct, ok
	}
	if ct, ok := r.colTables[name]; ok {
		return ct, true
	}
	raw, ok := r.Data[name]
	if !ok {
		return nil, false
	}
	if r.colTables == nil {
		r.colTables = make(map[string]*ColTable)
	}
	ct := NewColTable(raw, 0)
	r.colTables[name] = ct
	return ct, true
}

// indexView returns the maintained permutation view of an index, when
// the dataset keeps one (the vectorized index-scan source). Fixture
// runners (Data/Indexed) have no permutation vectors; their index
// scans stay on the row path.
func (r *Runner) indexView(table, index string) (*IndexView, bool) {
	if r.Dataset == nil {
		return nil, false
	}
	v := r.Dataset.Views[table][index]
	return v, v != nil
}

// IterHook rewrites one compiled operator. op and detail match the
// OpStats entry the operator reports under; life is the pipeline's
// lifecycle, whose Done channel lets blocking wrappers unblock on
// cancellation.
type IterHook func(op, detail string, it Iterator, life *Life) Iterator

// OpStats is one operator's execution counters, in pipeline preorder.
type OpStats struct {
	// Op is the physical operator name (plan.Op.String()).
	Op string `json:"op"`
	// Detail identifies the operator's target: relation/index for scans,
	// the ordering for sorts, the join predicate for joins, the grouping
	// columns for group operators.
	Detail string `json:"detail,omitempty"`
	// EstRows is the optimizer's output-cardinality estimate.
	EstRows float64 `json:"estRows"`
	// Rows counts the rows the operator actually emitted.
	Rows int64 `json:"rows"`
	// TimeNs is cumulative wall time spent in the operator's Open and
	// Next calls, children included (EXPLAIN ANALYZE convention); 0 when
	// the runner's timing is disabled. For operators running inside an
	// exchange segment it sums time across morsel workers, so it can
	// exceed wall clock (CPU-time convention).
	TimeNs int64 `json:"timeNs"`
	// DOP is the effective degree of parallelism for exchange operators
	// and the segment operators running inside their workers; 0 for
	// serial operators.
	DOP int `json:"dop,omitempty"`
	// Limited marks operators running under a Limit: EstRows is the
	// optimizer's pre-limit estimate of the full stream, so Rows can
	// legitimately stop far short of it once the limit quiesces the
	// pipeline. Without the marker that gap reads as a misestimate.
	Limited bool `json:"limited,omitempty"`
	// Batches counts the vector batches a vectorized operator emitted
	// (0 for row operators).
	Batches int64 `json:"batches,omitempty"`
	// SpillRuns/SpilledBytes report an external sort's disk activity:
	// how many sorted runs it flushed and their total size (0 when the
	// sort stayed in memory or the operator isn't a sort).
	SpillRuns    int64 `json:"spillRuns,omitempty"`
	SpilledBytes int64 `json:"spilledBytes,omitempty"`
}

// Pipeline is a compiled plan: the operator tree plus its output schema
// and per-operator counters. A pipeline is single-use per Execute call
// and not safe for concurrent use; compile one per execution.
type Pipeline struct {
	// Root is the top operator (already wrapped in counters).
	Root Iterator
	// Schema describes Root's output columns; group pipelines emit the
	// grouping columns followed by one Rel -1 column per aggregate
	// select-list item (AggColumn when the query binds none and the
	// default count(*) applies).
	Schema []query.ColumnRef
	// Ops lists the per-operator counters in plan preorder.
	Ops []*OpStats
	// Life is the pipeline's execution lifecycle: cancellation,
	// per-query budget and shared memory accounting.
	Life *Life
}

// Execute opens the pipeline, drains it and returns all rows. It is
// ExecuteContext under context.Background() — uncancellable, for tests
// and benchmarks.
func (p *Pipeline) Execute() ([]Row, error) {
	return p.ExecuteContext(context.Background())
}

// ExecuteContext opens the pipeline, drains it and returns all rows,
// observing ctx: cancellation (client disconnect, deadline) is checked
// once per CancelCheckInterval rows anywhere in the pipeline and
// surfaces as an error wrapping ErrCanceled and ctx.Err(). Whatever
// the pipeline charged against its budget is released before return,
// success or not.
func (p *Pipeline) ExecuteContext(ctx context.Context) ([]Row, error) {
	if err := p.Life.bind(ctx); err != nil {
		return nil, err
	}
	defer p.Life.releaseAll()
	return Collect(p.Root)
}

// RowsSorted sums the rows that passed through Sort operators — the
// benchmark's "how much sorting did this plan actually do" number (a
// sort emits every row it consumed).
func (p *Pipeline) RowsSorted() int64 {
	var n int64
	for _, op := range p.Ops {
		if op.Op == plan.Sort.String() {
			n += op.Rows
		}
	}
	return n
}

// SpillStats sums the external sorts' disk activity across the
// pipeline: spilled runs and spilled bytes (0/0 when every sort stayed
// in memory).
func (p *Pipeline) SpillStats() (runs, bytes int64) {
	for _, op := range p.Ops {
		runs += op.SpillRuns
		bytes += op.SpilledBytes
	}
	return runs, bytes
}

// statsIter counts (and optionally times) one operator, and is where
// every operator's Next observes cancellation: one shared row counter
// per pipeline, polled every CancelCheckInterval rows — a build loop
// deep inside a hash join ticks it through its child wrapper just like
// the root does.
type statsIter struct {
	in     Iterator
	st     *OpStats
	life   *Life
	timing bool
}

func (s *statsIter) Open() error {
	if !s.timing {
		return s.in.Open()
	}
	begin := time.Now()
	err := s.in.Open()
	s.st.TimeNs += time.Since(begin).Nanoseconds()
	return err
}

func (s *statsIter) Next() (Row, bool, error) {
	if err := s.life.step(); err != nil {
		return nil, false, err
	}
	if !s.timing {
		row, ok, err := s.in.Next()
		if ok {
			s.st.Rows++
		}
		return row, ok, err
	}
	begin := time.Now()
	row, ok, err := s.in.Next()
	s.st.TimeNs += time.Since(begin).Nanoseconds()
	if ok {
		s.st.Rows++
	}
	return row, ok, err
}

func (s *statsIter) Close() error { return s.in.Close() }

// batchStatsIter adds batch passthrough to statsIter when the wrapped
// operator emits batches: one cancellation poll and one counter update
// per batch instead of per row.
type batchStatsIter struct {
	statsIter
	b batchIterator
}

// SizeHint forwards the wrapped operator's estimate, when it has one.
func (s *batchStatsIter) SizeHint() int {
	if sh, ok := s.b.(sizeHinter); ok {
		return sh.SizeHint()
	}
	return 0
}

func (s *batchStatsIter) NextBatch() ([]Row, bool, error) {
	if err := s.life.step(); err != nil {
		return nil, false, err
	}
	if !s.timing {
		batch, ok, err := s.b.NextBatch()
		s.st.Rows += int64(len(batch))
		return batch, ok, err
	}
	begin := time.Now()
	batch, ok, err := s.b.NextBatch()
	s.st.TimeNs += time.Since(begin).Nanoseconds()
	s.st.Rows += int64(len(batch))
	return batch, ok, err
}

// Run compiles and executes the plan, returning its rows together with
// the output schema (one entry per column, identifying the source
// relation/column; AggColumn for the aggregate of group pipelines).
func (r *Runner) Run(n *plan.Node) ([]Row, []query.ColumnRef, error) {
	p, err := r.Compile(n)
	if err != nil {
		return nil, nil, err
	}
	rows, err := p.Execute()
	if err != nil {
		return nil, nil, err
	}
	return rows, p.Schema, nil
}

// Compile turns a physical plan into an executable pipeline. Every plan
// shape the optimizer emits compiles: scans (table and index), sorts,
// all three join operators with residual predicates, and the group
// operators with sorts above them — ORDER BY columns are resolved
// through join-equivalence classes, so ordering by a column the plan
// only carries as an equated twin (or grouping by one) works.
func (r *Runner) Compile(n *plan.Node) (*Pipeline, error) {
	p := &Pipeline{Life: &Life{budget: r.Budget, acct: r.Accountant}}
	it, schema, ok, err := r.tryVec(n, p, true)
	if err != nil {
		return nil, err
	}
	if !ok {
		it, schema, err = r.build(n, p)
		if err != nil {
			return nil, err
		}
	}
	p.Root = it
	p.Schema = schema
	return p, nil
}

// tryVec compiles the subtree at n vectorized (behind a vecRows
// adapter) when the runner vectorizes, the batch operators cover the
// subtree, and batching pays for the adapter copy at the seam: a hash
// probe or hash grouping anywhere in the subtree, or — at the pipeline
// root only — a scan with constant predicates to fold into a selection
// vector. Fault hooks need the per-row seam, so a hooked runner never
// vectorizes.
func (r *Runner) tryVec(n *plan.Node, p *Pipeline, root bool) (Iterator, []query.ColumnRef, bool, error) {
	if !r.Vectorize || r.Hook != nil || !r.vecWins(n, root) || !r.vecable(n) {
		return nil, nil, false, nil
	}
	v, schema, err := r.buildVec(n, p)
	if err != nil {
		return nil, nil, false, err
	}
	return &vecRows{in: v, w: len(schema), hint: int(n.Card)}, schema, true, nil
}

// vecWins reports whether vectorizing the subtree at n beats the row
// path. Bare scans lose: the row path hands out zero-copy row views
// while the adapter copies every value, so a scan only pays at the
// root and only when constant predicates ride the vector path.
func (r *Runner) vecWins(n *plan.Node, root bool) bool {
	switch n.Op {
	case plan.HashJoin, plan.GroupHash:
		return true
	case plan.TableScan, plan.IndexScan:
		return root && len(r.A.Graph.Relations[n.Rel].ConstPreds) > 0
	}
	return false
}

// vecable reports whether the vectorized operator set covers the
// subtree rooted at n (see batch.go).
func (r *Runner) vecable(n *plan.Node) bool {
	g := r.A.Graph
	switch n.Op {
	case plan.TableScan:
		_, ok := r.colTable(g.Relations[n.Rel].Table.Name)
		return ok
	case plan.IndexScan:
		// Only a maintained permutation view qualifies: fixture runners
		// without one sort at Open on the row path, and that sort must
		// keep showing up in rows-sorted accounting.
		rel := &g.Relations[n.Rel]
		_, ok := r.indexView(rel.Table.Name, rel.Table.Indexes[n.Index].Name)
		return ok
	case plan.HashJoin:
		// The vectorized probe evaluates exactly one equality predicate
		// and compiles no residual filter; multi-predicate joins stay on
		// the row path.
		return r.crossingPreds(n) == 1 && r.vecable(n.Left)
	case plan.GroupHash:
		return len(g.GroupBy) <= tupleKeyWidth && r.vecable(n.Left)
	}
	return false
}

// crossingPreds counts the equality predicates between a join's two
// sides — the number resolveJoinPreds will resolve.
func (r *Runner) crossingPreds(n *plan.Node) int {
	g := r.A.Graph
	cnt := 0
	for _, e := range g.EdgesBetween(planRels(n.Left), planRels(n.Right)) {
		cnt += len(g.Edges[e].Preds)
	}
	return cnt
}

// planRels is the relation bitmask of the scan leaves under n.
func planRels(n *plan.Node) uint64 {
	if n == nil {
		return 0
	}
	var m uint64
	if n.Op == plan.TableScan || n.Op == plan.IndexScan {
		m |= 1 << uint(n.Rel)
	}
	return m | planRels(n.Left) | planRels(n.Right)
}

func (r *Runner) batchSize() int {
	if r.BatchSize > 0 {
		return r.BatchSize
	}
	return DefaultBatchSize
}

// wrapVec attaches the vectorized counter wrapper. No hook seam: a
// hooked runner never reaches the batch path (tryVec guards).
func (r *Runner) wrapVec(v VecIterator, st *OpStats, p *Pipeline) VecIterator {
	return &vecStats{in: v, st: st, life: p.Life, timing: !r.DisableTiming}
}

// buildVec compiles a vecable subtree into batch operators, reporting
// under the same OpStats preorder (and operator names) as the row
// compiler, so EXPLAIN ANALYZE output keeps its shape either way.
func (r *Runner) buildVec(n *plan.Node, p *Pipeline) (VecIterator, []query.ColumnRef, error) {
	g := r.A.Graph
	st := &OpStats{Op: n.Op.String(), EstRows: n.Card}
	p.Ops = append(p.Ops, st)
	size := r.batchSize()
	switch n.Op {
	case plan.TableScan, plan.IndexScan:
		rel := &g.Relations[n.Rel]
		st.Detail = rel.Alias
		ct, ok := r.colTable(rel.Table.Name)
		if !ok {
			return nil, nil, fmt.Errorf("exec: no data for table %s", rel.Table.Name)
		}
		var perm []int32
		if n.Op == plan.IndexScan {
			ix := rel.Table.Indexes[n.Index]
			st.Detail = rel.Alias + "/" + ix.Name
			v, ok := r.indexView(rel.Table.Name, ix.Name)
			if !ok {
				return nil, nil, fmt.Errorf("exec: no maintained view for %s.%s", rel.Table.Name, ix.Name)
			}
			if !v.Identity {
				// An identity view (base order == index order) scans the
				// table's columns zero-copy; only a real permutation
				// pays the gather.
				perm = v.Perm
			}
		}
		schema := make([]query.ColumnRef, len(rel.Table.Columns))
		for c := range schema {
			schema[c] = query.ColumnRef{Rel: n.Rel, Col: c}
		}
		sc := &vecScan{cols: ct.Cols, total: ct.N, perm: perm, preds: rel.ConstPreds, size: size}
		return r.wrapVec(sc, st, p), schema, nil

	case plan.HashJoin:
		left, ls, err := r.buildVec(n.Left, p)
		if err != nil {
			return nil, nil, err
		}
		var right Iterator
		var rs []query.ColumnRef
		if r.vecable(n.Right) {
			// A bare scan loses behind the row adapter (vecWins), but as
			// a build side it drains batch-at-a-time below — compile any
			// vecable build vectorized regardless.
			v, vrs, verr := r.buildVec(n.Right, p)
			if verr != nil {
				return nil, nil, verr
			}
			right, rs = &vecRows{in: v, w: len(vrs), hint: int(n.Right.Card)}, vrs
		} else if right, rs, err = r.build(n.Right, p); err != nil {
			return nil, nil, err
		}
		eqs, primary, detail, err := r.resolveJoinPreds(n, ls, rs)
		if err != nil {
			return nil, nil, err
		}
		st.Detail = detail
		schema := append(append([]query.ColumnRef{}, ls...), rs...)
		j := &vecHashJoin{
			left: left, build: right,
			lkey: eqs[primary].l, rkey: eqs[primary].r - len(ls),
			lw: len(ls), rw: len(rs),
			life: p.Life, size: size,
			rcard: int(n.Right.Card),
		}
		// A build side that is itself a vectorized subtree behind the
		// row adapter drains batch-at-a-time, skipping the adapter's
		// per-row materialization.
		if vr, ok := right.(*vecRows); ok {
			j.vbuild = vr.in
		}
		return r.wrapVec(j, st, p), schema, nil

	case plan.GroupHash:
		in, schema, err := r.buildVec(n.Left, p)
		if err != nil {
			return nil, nil, err
		}
		keys, aggs, outSchema, err := r.resolveGroup(schema, st)
		if err != nil {
			return nil, nil, err
		}
		gh := &vecGroupHash{
			in: in, keys: keys, specs: normalizeAggs(aggs, AggCount, 0),
			life: p.Life, size: size, width: len(schema),
		}
		return r.wrapVec(gh, st, p), outSchema, nil
	}
	return nil, nil, fmt.Errorf("exec: operator %v not vectorized", n.Op)
}

// wrap attaches counters for node n around it and registers them on the
// pipeline (preorder position was reserved by build); the fault hook,
// when configured, interposes under the counters.
func (r *Runner) wrap(it Iterator, st *OpStats, p *Pipeline) Iterator {
	if r.Hook != nil {
		it = r.Hook(st.Op, st.Detail, it, p.Life)
	}
	si := statsIter{in: it, st: st, life: p.Life, timing: !r.DisableTiming}
	// A hooked operator loses the batch path by design: the hook's
	// wrapper interposes per row, which is what fault injection needs.
	if b, ok := it.(batchIterator); ok {
		return &batchStatsIter{statsIter: si, b: b}
	}
	return &si
}

func (r *Runner) build(n *plan.Node, p *Pipeline) (Iterator, []query.ColumnRef, error) {
	// A hash-heavy subtree under a row operator (sort, merge join,
	// exchange, limit) still runs vectorized behind the adapter.
	if it, schema, ok, err := r.tryVec(n, p, false); err != nil {
		return nil, nil, err
	} else if ok {
		return it, schema, nil
	}
	g := r.A.Graph
	st := &OpStats{Op: n.Op.String(), EstRows: n.Card}
	p.Ops = append(p.Ops, st)
	switch n.Op {
	case plan.TableScan, plan.IndexScan:
		rel := &g.Relations[n.Rel]
		st.Detail = rel.Alias
		raw, ok := r.dataRows(rel.Table.Name)
		if !ok {
			return nil, nil, fmt.Errorf("exec: no data for table %s", rel.Table.Name)
		}
		schema := make([]query.ColumnRef, len(rel.Table.Columns))
		for c := range schema {
			schema[c] = query.ColumnRef{Rel: n.Rel, Col: c}
		}
		var it Iterator
		if n.Op == plan.IndexScan {
			ix := rel.Table.Indexes[n.Index]
			st.Detail = rel.Alias + "/" + ix.Name
			if sorted, ok := r.indexRows(rel.Table.Name, ix.Name); ok {
				// The dataset maintains this index: stream it in order.
				it = NewScan(sorted)
			} else {
				// No maintained index: simulate the index order by
				// sorting (costed like a scan by the planner, but the
				// executor has nothing better without the index).
				keys := make([]int, len(ix.Columns))
				for i, name := range ix.Columns {
					keys[i] = rel.Table.ColumnIndex(name)
				}
				it = &Sort{In: NewScan(raw), Keys: keys}
			}
		} else {
			it = NewScan(raw)
		}
		if len(rel.ConstPreds) > 0 {
			relIdx := n.Rel
			it = &Filter{In: it, Pred: func(row Row) bool {
				for _, p := range g.Relations[relIdx].ConstPreds {
					if !p.Matches(row[p.Col.Col]) {
						return false
					}
				}
				return true
			}}
		}
		return r.wrap(it, st, p), schema, nil

	case plan.Sort:
		in, schema, err := r.build(n.Left, p)
		if err != nil {
			return nil, nil, err
		}
		keys, detail, err := r.sortKeys(n.SortOrd, schema)
		if err != nil {
			return nil, nil, err
		}
		st.Detail = detail
		if r.SpillBytes > 0 {
			es := &ExtSort{In: in, Keys: keys, Life: p.Life,
				MaxRunBytes: r.SpillBytes, Dir: r.SpillDir, St: st}
			return r.wrap(es, st, p), schema, nil
		}
		return r.wrap(&Sort{In: in, Keys: keys, Life: p.Life}, st, p), schema, nil

	case plan.MergeJoin, plan.HashJoin, plan.NestedLoopJoin:
		return r.buildJoin(n, p, st)

	case plan.ExchangeMerge, plan.ExchangeUnion:
		return r.buildExchange(n, p, st)

	case plan.Limit:
		start := len(p.Ops)
		in, schema, err := r.build(n.Left, p)
		if err != nil {
			return nil, nil, err
		}
		// Everything below a Limit runs under early-out: flag it so the
		// stats reader knows EstRows is the pre-limit estimate.
		for _, o := range p.Ops[start:] {
			o.Limited = true
		}
		st.Detail = fmt.Sprintf("k=%d", n.Limit)
		return r.wrap(&Limit{In: in, N: int64(n.Limit), Life: p.Life}, st, p), schema, nil

	case plan.GroupSorted, plan.GroupHash, plan.GroupClustered:
		in, schema, err := r.build(n.Left, p)
		if err != nil {
			return nil, nil, err
		}
		keys, aggs, outSchema, err := r.resolveGroup(schema, st)
		if err != nil {
			return nil, nil, err
		}
		var it Iterator
		switch n.Op {
		case plan.GroupSorted:
			it = &GroupSorted{In: in, Keys: keys, Agg: AggCount, Aggs: aggs}
		case plan.GroupClustered:
			it = &GroupClustered{In: in, Keys: keys, Agg: AggCount, Aggs: aggs, Life: p.Life}
		default:
			it = &GroupHash{In: in, Keys: keys, Agg: AggCount, Aggs: aggs, Life: p.Life}
		}
		return r.wrap(it, st, p), outSchema, nil
	}
	return nil, nil, fmt.Errorf("exec: unsupported plan operator %v", n.Op)
}

// resolveGroup resolves the query's GROUP BY columns and aggregate
// select list against a group operator's input schema: key positions,
// aggregate specs and the group output schema, appending the display
// detail to st. Aggregate output columns get Rel -1 / select-list
// position, which the serving layer renders back through
// Graph.AggregateName; a query binding no aggregates gets the
// executor's default single count(*) (AggColumn).
func (r *Runner) resolveGroup(schema []query.ColumnRef, st *OpStats) ([]int, []AggSpec, []query.ColumnRef, error) {
	g := r.A.Graph
	keys := make([]int, 0, len(g.GroupBy))
	outSchema := make([]query.ColumnRef, 0, len(g.GroupBy)+1)
	for _, c := range g.GroupBy {
		pos := r.colPosEquiv(schema, c)
		if pos < 0 {
			return nil, nil, nil, fmt.Errorf("exec: group column %s not in schema", g.ColumnName(c))
		}
		keys = append(keys, pos)
		outSchema = append(outSchema, c)
		if st.Detail != "" {
			st.Detail += ", "
		}
		st.Detail += g.ColumnName(c)
	}
	var aggs []AggSpec
	for i, a := range g.Aggregates {
		spec := AggSpec{}
		switch a.Fn {
		case query.AggCount:
			spec.Fn = AggCount
		case query.AggSum:
			spec.Fn = AggSum
		case query.AggAvg:
			spec.Fn = AggAvg
		case query.AggMin:
			spec.Fn = AggMin
		case query.AggMax:
			spec.Fn = AggMax
		default:
			return nil, nil, nil, fmt.Errorf("exec: unsupported aggregate function %v", a.Fn)
		}
		if a.Fn != query.AggCount {
			pos := r.colPosEquiv(schema, a.Col)
			if pos < 0 {
				return nil, nil, nil, fmt.Errorf("exec: aggregate column %s not in schema", g.ColumnName(a.Col))
			}
			spec.Col = pos
		}
		aggs = append(aggs, spec)
		outSchema = append(outSchema, query.ColumnRef{Rel: -1, Col: i})
		st.Detail += ", " + g.AggregateName(a)
	}
	if len(aggs) == 0 {
		outSchema = append(outSchema, AggColumn)
	}
	return keys, aggs, outSchema, nil
}

func asRows(raw [][]int64) []Row {
	rows := make([]Row, len(raw))
	for i, v := range raw {
		rows[i] = Row(v)
	}
	return rows
}

// joinEq is one equality predicate's column positions in a join's
// combined (left ++ right) output schema.
type joinEq struct{ l, r int }

// residualPred checks every predicate in eqs except the skip'th on a
// combined-schema row — the filter above a join whose algorithm
// evaluates only the primary predicate.
func residualPred(eqs []joinEq, skip int) func(Row) bool {
	return func(row Row) bool {
		for i, e := range eqs {
			if i == skip {
				continue
			}
			if row[e.l] != row[e.r] {
				return false
			}
		}
		return true
	}
}

// resolveJoinPreds maps every equality predicate crossing a join's two
// sides to combined-schema positions. It returns the predicates, the
// index of the plan's primary predicate (the one the join algorithm
// evaluates) and its display detail. All predicates must hold on the
// output; a residual filter enforces the non-primary ones.
func (r *Runner) resolveJoinPreds(n *plan.Node, ls, rs []query.ColumnRef) ([]joinEq, int, string, error) {
	g := r.A.Graph
	leftRels := relMask(ls)
	rightRels := relMask(rs)
	crossing := g.EdgesBetween(leftRels, rightRels)
	var eqs []joinEq
	primary := -1
	detail := ""
	for _, e := range crossing {
		for pi, pred := range g.Edges[e].Preds {
			lp, rp := pred.Left, pred.Right
			lpos := colPos(ls, lp)
			rpos := colPos(rs, rp)
			if lpos < 0 { // predicate written the other way round
				lpos = colPos(ls, rp)
				rpos = colPos(rs, lp)
			}
			if lpos < 0 || rpos < 0 {
				return nil, 0, "", fmt.Errorf("exec: join predicate columns not in schemas")
			}
			eqs = append(eqs, joinEq{lpos, len(ls) + rpos})
			if e == n.Edge && pi == n.Pred {
				primary = len(eqs) - 1
				detail = fmt.Sprintf("%s = %s", g.ColumnName(lp), g.ColumnName(rp))
			}
		}
	}
	if len(eqs) == 0 {
		return nil, 0, "", fmt.Errorf("exec: join without predicates")
	}
	if primary < 0 {
		primary = 0
	}
	return eqs, primary, detail, nil
}

func (r *Runner) buildJoin(n *plan.Node, p *Pipeline, st *OpStats) (Iterator, []query.ColumnRef, error) {
	left, ls, err := r.build(n.Left, p)
	if err != nil {
		return nil, nil, err
	}
	right, rs, err := r.build(n.Right, p)
	if err != nil {
		return nil, nil, err
	}
	schema := append(append([]query.ColumnRef{}, ls...), rs...)
	eqs, primary, detail, err := r.resolveJoinPreds(n, ls, rs)
	if err != nil {
		return nil, nil, err
	}
	st.Detail = detail

	switch n.Op {
	case plan.MergeJoin:
		it := Iterator(&MergeJoin{
			Left: left, Right: right,
			LeftKey:  eqs[primary].l,
			RightKey: eqs[primary].r - len(ls),
			Life:     p.Life,
		})
		if len(eqs) > 1 {
			it = &Filter{In: it, Pred: residualPred(eqs, primary)}
		}
		return r.wrap(it, st, p), schema, nil
	case plan.HashJoin:
		it := Iterator(&HashJoin{
			Left: left, Right: right,
			LeftKey:  eqs[primary].l,
			RightKey: eqs[primary].r - len(ls),
			Life:     p.Life,
		})
		if len(eqs) > 1 {
			it = &Filter{In: it, Pred: residualPred(eqs, primary)}
		}
		return r.wrap(it, st, p), schema, nil
	default: // NestedLoopJoin
		nl := &NestedLoopJoin{
			Outer: left, Inner: right, Life: p.Life,
			Pred: func(outer, inner Row) bool {
				for _, e := range eqs {
					if outer[e.l] != inner[e.r-len(ls)] {
						return false
					}
				}
				return true
			},
		}
		return r.wrap(nl, st, p), schema, nil
	}
}

// sortKeys maps an ordering's attributes to schema positions, resolving
// columns the schema only carries as equated twins through the join
// equivalence classes.
func (r *Runner) sortKeys(ord order.ID, schema []query.ColumnRef) ([]int, string, error) {
	seq := r.A.Builder.Interner().Seq(ord)
	keys := make([]int, 0, len(seq))
	detail := ""
	for _, at := range seq {
		c, ok := r.A.ColumnOf(at)
		if !ok {
			return nil, "", fmt.Errorf("exec: sort attribute %d has no column", at)
		}
		pos := r.colPosEquiv(schema, c)
		if pos < 0 {
			return nil, "", fmt.Errorf("exec: sort column %s not in schema (nor any equated column)",
				r.A.Graph.ColumnName(c))
		}
		keys = append(keys, pos)
		if detail != "" {
			detail += ", "
		}
		detail += r.A.Graph.ColumnName(c)
	}
	return keys, detail, nil
}

func colPos(schema []query.ColumnRef, c query.ColumnRef) int {
	for i, s := range schema {
		if s == c {
			return i
		}
	}
	return -1
}

// ColPos returns the position of c in a pipeline's output schema, or
// -1 when the column is not carried.
func ColPos(schema []query.ColumnRef, c query.ColumnRef) int {
	return colPos(schema, c)
}

// colPosEquiv is colPos with a fallback through the query's column
// equivalence classes: when c itself is not in the schema, any column
// equated to it by the join predicates (transitively) stands in. This
// is what lifts the old "ORDER BY ⊆ GROUP BY" executor restriction —
// a plan may group by a.x and order by b.y with a.x = b.y, or order a
// join output by whichever twin of an equated pair the DP kept.
func (r *Runner) colPosEquiv(schema []query.ColumnRef, c query.ColumnRef) int {
	if pos := colPos(schema, c); pos >= 0 {
		return pos
	}
	classes := r.equivClasses()
	class, ok := classes[c]
	if !ok {
		return -1
	}
	for i, s := range schema {
		if sc, ok := classes[s]; ok && sc == class {
			return i
		}
	}
	return -1
}

// equivClasses unions columns across every join equality predicate;
// columns in one class carry equal values in any join output that
// applied the predicates.
func (r *Runner) equivClasses() map[query.ColumnRef]int {
	if r.equiv != nil {
		return r.equiv
	}
	g := r.A.Graph
	parent := map[query.ColumnRef]query.ColumnRef{}
	var find func(c query.ColumnRef) query.ColumnRef
	find = func(c query.ColumnRef) query.ColumnRef {
		p, ok := parent[c]
		if !ok || p == c {
			parent[c] = c
			return c
		}
		root := find(p)
		parent[c] = root
		return root
	}
	for e := range g.Edges {
		for _, pred := range g.Edges[e].Preds {
			parent[find(pred.Left)] = find(pred.Right)
		}
	}
	classes := map[query.ColumnRef]int{}
	ids := map[query.ColumnRef]int{}
	for c := range parent {
		root := find(c)
		id, ok := ids[root]
		if !ok {
			id = len(ids)
			ids[root] = id
		}
		classes[c] = id
	}
	r.equiv = classes
	return classes
}

func relMask(schema []query.ColumnRef) uint64 {
	var m uint64
	for _, c := range schema {
		if c.Rel >= 0 {
			m |= 1 << uint(c.Rel)
		}
	}
	return m
}

// BruteForce evaluates the query graph directly: the filtered cartesian
// product of all relations, columns in relation order 0..n-1. The result
// is the reference the Runner's plans are validated against.
func BruteForce(a *query.Analysis, data map[string][][]int64) ([]Row, []query.ColumnRef, error) {
	g := a.Graph
	var schema []query.ColumnRef
	offsets := make([]int, len(g.Relations))
	for r := range g.Relations {
		offsets[r] = len(schema)
		for c := range g.Relations[r].Table.Columns {
			schema = append(schema, query.ColumnRef{Rel: r, Col: c})
		}
	}
	pos := func(c query.ColumnRef) int { return offsets[c.Rel] + c.Col }

	var out []Row
	var recurse func(rel int, acc Row)
	recurse = func(rel int, acc Row) {
		if rel == len(g.Relations) {
			for e := range g.Edges {
				for _, p := range g.Edges[e].Preds {
					if acc[pos(p.Left)] != acc[pos(p.Right)] {
						return
					}
				}
			}
			out = append(out, append(Row{}, acc...))
			return
		}
		relData, ok := data[g.Relations[rel].Table.Name]
		if !ok {
			relData = nil
		}
		for _, row := range relData {
			match := true
			for _, p := range g.Relations[rel].ConstPreds {
				if !p.Matches(row[p.Col.Col]) {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			recurse(rel+1, append(acc, row...))
		}
	}
	recurse(0, nil)
	return out, schema, nil
}

// Canonicalize reorders each row's columns from the given schema into
// relation order 0..n-1 so results from different plans compare equal.
func Canonicalize(rows []Row, schema []query.ColumnRef, g *query.Graph) []Row {
	var canonical []query.ColumnRef
	for r := range g.Relations {
		for c := range g.Relations[r].Table.Columns {
			canonical = append(canonical, query.ColumnRef{Rel: r, Col: c})
		}
	}
	perm := make([]int, len(canonical))
	for i, c := range canonical {
		perm[i] = colPos(schema, c)
	}
	out := make([]Row, len(rows))
	for i, row := range rows {
		nr := make(Row, len(perm))
		for j, p := range perm {
			if p >= 0 && p < len(row) {
				nr[j] = row[p]
			}
		}
		out[i] = nr
	}
	return out
}
