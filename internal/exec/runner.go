package exec

import (
	"fmt"

	"orderopt/internal/order"
	"orderopt/internal/plan"
	"orderopt/internal/query"
)

// Runner executes optimizer plans over in-memory tables. Its purpose is
// end-to-end validation: if the order-optimization component wrongly
// claimed an input ordering, the merge join's sortedness check fails;
// and the produced result must equal brute-force evaluation of the
// query graph.
type Runner struct {
	A *query.Analysis
	// Data maps table names to rows (values aligned with the catalog's
	// column order).
	Data map[string][][]int64
}

// Run executes the plan and returns its rows together with the output
// schema (one entry per column, identifying the source relation/column).
// Plans containing group operators are supported only when the ORDER BY
// columns are part of the GROUP BY.
func (r *Runner) Run(n *plan.Node) ([]Row, []query.ColumnRef, error) {
	it, schema, err := r.build(n)
	if err != nil {
		return nil, nil, err
	}
	rows, err := Collect(it)
	if err != nil {
		return nil, nil, err
	}
	return rows, schema, nil
}

// schemaOf returns the column layout a plan node emits: scans emit all
// columns of their relation, joins concatenate left then right.
func (r *Runner) build(n *plan.Node) (Iterator, []query.ColumnRef, error) {
	g := r.A.Graph
	switch n.Op {
	case plan.TableScan, plan.IndexScan:
		rel := &g.Relations[n.Rel]
		raw, ok := r.Data[rel.Table.Name]
		if !ok {
			return nil, nil, fmt.Errorf("exec: no data for table %s", rel.Table.Name)
		}
		rows := make([]Row, len(raw))
		for i, v := range raw {
			rows[i] = Row(v)
		}
		schema := make([]query.ColumnRef, len(rel.Table.Columns))
		for c := range schema {
			schema[c] = query.ColumnRef{Rel: n.Rel, Col: c}
		}
		var it Iterator = NewScan(rows)
		if n.Op == plan.IndexScan {
			ix := rel.Table.Indexes[n.Index]
			keys := make([]int, len(ix.Columns))
			for i, name := range ix.Columns {
				keys[i] = rel.Table.ColumnIndex(name)
			}
			it = &Sort{In: it, Keys: keys}
		}
		preds := rel.ConstPreds
		if len(preds) > 0 {
			relIdx := n.Rel
			it = &Filter{In: it, Pred: func(row Row) bool {
				for _, p := range g.Relations[relIdx].ConstPreds {
					if !p.Matches(row[p.Col.Col]) {
						return false
					}
				}
				return true
			}}
		}
		return it, schema, nil

	case plan.Sort:
		in, schema, err := r.build(n.Left)
		if err != nil {
			return nil, nil, err
		}
		keys, err := r.sortKeys(n.SortOrd, schema)
		if err != nil {
			return nil, nil, err
		}
		return &Sort{In: in, Keys: keys}, schema, nil

	case plan.MergeJoin, plan.HashJoin, plan.NestedLoopJoin:
		return r.buildJoin(n)

	case plan.GroupSorted, plan.GroupHash, plan.GroupClustered:
		in, schema, err := r.build(n.Left)
		if err != nil {
			return nil, nil, err
		}
		keys := make([]int, 0, len(g.GroupBy))
		outSchema := make([]query.ColumnRef, 0, len(g.GroupBy))
		for _, c := range g.GroupBy {
			pos := colPos(schema, c)
			if pos < 0 {
				return nil, nil, fmt.Errorf("exec: group column %s not in schema", g.ColumnName(c))
			}
			keys = append(keys, pos)
			outSchema = append(outSchema, c)
		}
		switch n.Op {
		case plan.GroupSorted:
			return &GroupSorted{In: in, Keys: keys, Agg: AggCount}, outSchema, nil
		case plan.GroupClustered:
			return &GroupClustered{In: in, Keys: keys, Agg: AggCount}, outSchema, nil
		default:
			return &GroupHash{In: in, Keys: keys, Agg: AggCount}, outSchema, nil
		}
	}
	return nil, nil, fmt.Errorf("exec: unsupported plan operator %v", n.Op)
}

func (r *Runner) buildJoin(n *plan.Node) (Iterator, []query.ColumnRef, error) {
	g := r.A.Graph
	left, ls, err := r.build(n.Left)
	if err != nil {
		return nil, nil, err
	}
	right, rs, err := r.build(n.Right)
	if err != nil {
		return nil, nil, err
	}
	schema := append(append([]query.ColumnRef{}, ls...), rs...)

	// All equality predicates crossing the two sides must hold on the
	// output; the join algorithm evaluates one, a filter the rest.
	leftRels := relMask(ls)
	rightRels := relMask(rs)
	crossing := g.EdgesBetween(leftRels, rightRels)
	type eq struct{ l, r int } // positions in the combined schema
	var eqs []eq
	primary := -1
	for _, e := range crossing {
		for pi, p := range g.Edges[e].Preds {
			lp, rp := p.Left, p.Right
			lpos := colPos(ls, lp)
			rpos := colPos(rs, rp)
			if lpos < 0 { // predicate written the other way round
				lpos = colPos(ls, rp)
				rpos = colPos(rs, lp)
			}
			if lpos < 0 || rpos < 0 {
				return nil, nil, fmt.Errorf("exec: join predicate columns not in schemas")
			}
			eqs = append(eqs, eq{lpos, len(ls) + rpos})
			if e == n.Edge && pi == n.Pred {
				primary = len(eqs) - 1
			}
		}
	}
	if len(eqs) == 0 {
		return nil, nil, fmt.Errorf("exec: join without predicates")
	}
	if primary < 0 {
		primary = 0
	}

	residualFrom := func(skip int) func(Row) bool {
		return func(row Row) bool {
			for i, e := range eqs {
				if i == skip {
					continue
				}
				if row[e.l] != row[e.r] {
					return false
				}
			}
			return true
		}
	}

	switch n.Op {
	case plan.MergeJoin:
		it := Iterator(&MergeJoin{
			Left: left, Right: right,
			LeftKey:  eqs[primary].l,
			RightKey: eqs[primary].r - len(ls),
		})
		if len(eqs) > 1 {
			it = &Filter{In: it, Pred: residualFrom(primary)}
		}
		return it, schema, nil
	case plan.HashJoin:
		it := Iterator(&HashJoin{
			Left: left, Right: right,
			LeftKey:  eqs[primary].l,
			RightKey: eqs[primary].r - len(ls),
		})
		if len(eqs) > 1 {
			it = &Filter{In: it, Pred: residualFrom(primary)}
		}
		return it, schema, nil
	default: // NestedLoopJoin
		nl := &NestedLoopJoin{
			Outer: left, Inner: right,
			Pred: func(outer, inner Row) bool {
				for _, e := range eqs {
					if outer[e.l] != inner[e.r-len(ls)] {
						return false
					}
				}
				return true
			},
		}
		return nl, schema, nil
	}
}

// sortKeys maps an ordering's attributes to schema positions.
func (r *Runner) sortKeys(ord order.ID, schema []query.ColumnRef) ([]int, error) {
	seq := r.A.Builder.Interner().Seq(ord)
	keys := make([]int, 0, len(seq))
	for _, at := range seq {
		c, ok := r.A.ColumnOf(at)
		if !ok {
			return nil, fmt.Errorf("exec: sort attribute %d has no column", at)
		}
		pos := colPos(schema, c)
		if pos < 0 {
			return nil, fmt.Errorf("exec: sort column %s not in schema", r.A.Graph.ColumnName(c))
		}
		keys = append(keys, pos)
	}
	return keys, nil
}

func colPos(schema []query.ColumnRef, c query.ColumnRef) int {
	for i, s := range schema {
		if s == c {
			return i
		}
	}
	return -1
}

func relMask(schema []query.ColumnRef) uint64 {
	var m uint64
	for _, c := range schema {
		m |= 1 << uint(c.Rel)
	}
	return m
}

// BruteForce evaluates the query graph directly: the filtered cartesian
// product of all relations, columns in relation order 0..n-1. The result
// is the reference the Runner's plans are validated against.
func BruteForce(a *query.Analysis, data map[string][][]int64) ([]Row, []query.ColumnRef, error) {
	g := a.Graph
	var schema []query.ColumnRef
	offsets := make([]int, len(g.Relations))
	for r := range g.Relations {
		offsets[r] = len(schema)
		for c := range g.Relations[r].Table.Columns {
			schema = append(schema, query.ColumnRef{Rel: r, Col: c})
		}
	}
	pos := func(c query.ColumnRef) int { return offsets[c.Rel] + c.Col }

	var out []Row
	var recurse func(rel int, acc Row)
	recurse = func(rel int, acc Row) {
		if rel == len(g.Relations) {
			for e := range g.Edges {
				for _, p := range g.Edges[e].Preds {
					if acc[pos(p.Left)] != acc[pos(p.Right)] {
						return
					}
				}
			}
			out = append(out, append(Row{}, acc...))
			return
		}
		relData, ok := data[g.Relations[rel].Table.Name]
		if !ok {
			relData = nil
		}
		for _, row := range relData {
			match := true
			for _, p := range g.Relations[rel].ConstPreds {
				if !p.Matches(row[p.Col.Col]) {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			recurse(rel+1, append(acc, row...))
		}
	}
	recurse(0, nil)
	return out, schema, nil
}

// Canonicalize reorders each row's columns from the given schema into
// relation order 0..n-1 so results from different plans compare equal.
func Canonicalize(rows []Row, schema []query.ColumnRef, g *query.Graph) []Row {
	var canonical []query.ColumnRef
	for r := range g.Relations {
		for c := range g.Relations[r].Table.Columns {
			canonical = append(canonical, query.ColumnRef{Rel: r, Col: c})
		}
	}
	perm := make([]int, len(canonical))
	for i, c := range canonical {
		perm[i] = colPos(schema, c)
	}
	out := make([]Row, len(rows))
	for i, row := range rows {
		nr := make(Row, len(perm))
		for j, p := range perm {
			if p >= 0 && p < len(row) {
				nr[j] = row[p]
			}
		}
		out[i] = nr
	}
	return out
}
