package exec

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
)

// This file is the query-lifecycle layer of the executor: cancellation,
// deadlines and resource budgets. Every compiled pipeline carries one
// Life; the per-operator stats wrappers check it for cancellation once
// per row batch (CancelCheckInterval rows across the whole pipeline,
// not per operator, so the hot path pays one counter increment per
// row), and the materializing operators charge every row they hold
// against it. A query therefore stops for exactly three reasons: it
// finished, its context was cancelled (client disconnect or deadline),
// or it hit a budget — and all three release whatever the query held.

// ErrBudgetExceeded is the typed error every budget rejection wraps:
// per-query row or byte budgets and the shared memory accountant all
// surface through errors.Is(err, ErrBudgetExceeded). The serving layer
// maps it to 429 — the query was too big for the resources it was
// admitted under, which is load shedding, not a server fault.
var ErrBudgetExceeded = errors.New("exec: query budget exceeded")

// ErrCanceled wraps the context error when a pipeline observes
// cancellation; errors.Is also matches the underlying context.Canceled
// or context.DeadlineExceeded, which is what the serving layer switches
// on (499-style client abort vs 504 deadline).
var ErrCanceled = errors.New("exec: pipeline canceled")

// CancelCheckInterval is how many rows flow through the pipeline's
// stats wrappers between context checks. Cancellation latency is
// bounded by this many Next calls (plus whatever single operator call
// is in progress); per-row checks would put a ctx.Err() load on the
// hottest loop in the system.
const CancelCheckInterval = 256

// rowOverheadBytes approximates the per-row allocation overhead
// (slice header + allocator rounding) charged on top of the 8 bytes
// per column when a row is materialized.
const rowOverheadBytes = 48

// rowBytes is the accounting size of a materialized row.
func rowBytes(r Row) int64 { return int64(len(r))*8 + rowOverheadBytes }

// Budget bounds what one query may materialize: build-side hash
// tables, sort inputs, merge-join duplicate groups, nested-loop
// inners and per-group accumulators all count. Zero fields are
// unlimited.
type Budget struct {
	// MaxRows caps the rows held in memory at once across the
	// pipeline's materializing operators.
	MaxRows int64
	// MaxBytes caps the approximate bytes those rows occupy.
	MaxBytes int64
}

// Accountant is a global memory budget shared by every concurrently
// executing query (and consulted by the serving layer's admission and
// health gauges). It is a simple reserve/release counter: queries
// charge their materialized rows as they hold them and release them
// when the pipeline closes, so overload degrades into typed
// ErrBudgetExceeded failures instead of unbounded RSS growth.
type Accountant struct {
	limit int64
	used  atomic.Int64
}

// NewAccountant returns an accountant enforcing limit bytes; limit <= 0
// means track usage without enforcing.
func NewAccountant(limit int64) *Accountant { return &Accountant{limit: limit} }

// Limit returns the configured byte limit (0 when tracking only).
func (a *Accountant) Limit() int64 {
	if a == nil {
		return 0
	}
	return a.limit
}

// Used returns the bytes currently reserved across all queries.
func (a *Accountant) Used() int64 {
	if a == nil {
		return 0
	}
	return a.used.Load()
}

// Reserve attempts to reserve n bytes against the limit, failing
// without reserving when it would be exceeded. The serving layer uses
// it for admission: a fixed per-query reservation is charged before
// the pipeline runs, so concurrent admissions are bounded by the same
// gauge the pipelines themselves charge. Pair every successful Reserve
// with exactly one Release.
func (a *Accountant) Reserve(n int64) bool { return a.tryReserve(n) }

// Release returns n bytes taken with Reserve.
func (a *Accountant) Release(n int64) { a.release(n) }

// tryReserve attempts to reserve n bytes, failing without reserving
// when the limit would be exceeded.
func (a *Accountant) tryReserve(n int64) bool {
	if a == nil {
		return true
	}
	for {
		cur := a.used.Load()
		if a.limit > 0 && cur+n > a.limit {
			return false
		}
		if a.used.CompareAndSwap(cur, cur+n) {
			return true
		}
	}
}

// release returns n reserved bytes.
func (a *Accountant) release(n int64) {
	if a == nil || n == 0 {
		return
	}
	a.used.Add(-n)
}

// Life is one pipeline execution's lifecycle: the cancellation context,
// the per-query budget and the (optional) shared accountant. A Life is
// created at Compile and bound to a context at ExecuteContext. The tick
// and held counters are atomic: a parallel pipeline's morsel workers
// all charge their budget use and poll cancellation through the one
// shared Life, so one worker tripping the budget fails the query (and
// cancels its siblings) exactly like the serial path would.
type Life struct {
	ctx  context.Context
	tick atomic.Int64

	// failed, once set, makes every subsequent cancellation poll return
	// the recorded error: an exchange worker hitting a terminal failure
	// (budget exhaustion, injected fault) aborts its sibling workers
	// through the shared Life within one poll interval, without needing
	// a context of its own.
	failed atomic.Pointer[error]

	budget    Budget
	acct      *Accountant
	heldRows  atomic.Int64
	heldBytes atomic.Int64

	// quiesced is the graceful counterpart of failed: a Limit operator
	// that has emitted its k rows sets it so background producers
	// (exchange morsel workers) stop doing work whose output can no
	// longer be consumed. Unlike abort, quiescence is not an error — the
	// consuming side of the pipeline keeps returning rows normally and
	// the query still succeeds.
	quiesced atomic.Bool
}

// quiesce asks background producers to stop at their next poll; the
// pipeline's result so far stays valid (no error is recorded).
func (l *Life) quiesce() {
	if l == nil {
		return
	}
	l.quiesced.Store(true)
}

// drained reports whether the pipeline was quiesced (the limit was
// reached and producers should wind down).
func (l *Life) drained() bool {
	return l != nil && l.quiesced.Load()
}

// abort records a terminal error; the first recorded error wins. Every
// wrapper polling this Life (all of them, across all workers) starts
// failing its Next within CancelCheckInterval rows.
func (l *Life) abort(err error) {
	if l == nil || err == nil {
		return
	}
	l.failed.CompareAndSwap(nil, &err)
}

// bind attaches the execution context. It returns the context error
// immediately when ctx is already dead, so a pipeline never opens
// under a cancelled request.
func (l *Life) bind(ctx context.Context) error {
	if l == nil {
		return nil
	}
	l.ctx = ctx
	return l.ctxErr()
}

// Done exposes the bound context's cancellation channel (nil before
// bind or without a Life) so blocking wrappers — fault-injected hangs,
// future exchange operators — can unblock on cancellation.
func (l *Life) Done() <-chan struct{} {
	if l == nil || l.ctx == nil {
		return nil
	}
	return l.ctx.Done()
}

// Err reports the cancellation error, wrapped in ErrCanceled, or nil.
func (l *Life) Err() error { return l.ctxErr() }

func (l *Life) ctxErr() error {
	if l == nil {
		return nil
	}
	if p := l.failed.Load(); p != nil {
		return *p
	}
	if l.ctx == nil {
		return nil
	}
	if err := l.ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	return nil
}

// step is the per-row cancellation check, called by every stats
// wrapper: one shared counter across the pipeline, a context poll
// every CancelCheckInterval rows.
func (l *Life) step() error {
	if l == nil {
		return nil
	}
	if l.tick.Add(1)%CancelCheckInterval != 0 {
		return nil
	}
	return l.ctxErr()
}

// stepN is step for a batch of n rows: the shared tick advances by n at
// once and cancellation is polled whenever the batch crossed an interval
// boundary, preserving the once-per-CancelCheckInterval-rows poll rate
// of the row path without per-row atomics.
func (l *Life) stepN(n int64) error {
	if l == nil {
		return nil
	}
	t := l.tick.Add(n)
	if (t-n)/CancelCheckInterval == t/CancelCheckInterval {
		return nil
	}
	return l.ctxErr()
}

// hold charges rows/bytes of materialized data against the per-query
// budget and the shared accountant. On failure nothing remains charged
// and the returned error wraps ErrBudgetExceeded. The charge is
// optimistic (add, check, roll back) so concurrent morsel workers can
// charge one shared budget without a lock.
func (l *Life) hold(rows, bytes int64) error {
	if l == nil {
		return nil
	}
	nr := l.heldRows.Add(rows)
	nb := l.heldBytes.Add(bytes)
	if l.budget.MaxRows > 0 && nr > l.budget.MaxRows {
		l.heldRows.Add(-rows)
		l.heldBytes.Add(-bytes)
		return fmt.Errorf("%w: %d rows materialized (budget %d)",
			ErrBudgetExceeded, nr, l.budget.MaxRows)
	}
	if l.budget.MaxBytes > 0 && nb > l.budget.MaxBytes {
		l.heldRows.Add(-rows)
		l.heldBytes.Add(-bytes)
		return fmt.Errorf("%w: %d bytes materialized (budget %d)",
			ErrBudgetExceeded, nb, l.budget.MaxBytes)
	}
	if !l.acct.tryReserve(bytes) {
		l.heldRows.Add(-rows)
		l.heldBytes.Add(-bytes)
		return fmt.Errorf("%w: global memory budget exhausted (%d of %d bytes in use)",
			ErrBudgetExceeded, l.acct.Used(), l.acct.Limit())
	}
	return nil
}

// holdRow charges one materialized row.
func (l *Life) holdRow(r Row) error {
	if l == nil {
		return nil
	}
	return l.hold(1, rowBytes(r))
}

// release returns rows/bytes a materializing operator let go of before
// the pipeline ended (a merge join discarding the previous duplicate
// group).
func (l *Life) release(rows, bytes int64) {
	if l == nil {
		return
	}
	l.heldRows.Add(-rows)
	l.heldBytes.Add(-bytes)
	l.acct.release(bytes)
}

// releaseAll returns everything still charged; pipelines call it when
// execution finishes (normally or not).
func (l *Life) releaseAll() {
	if l == nil {
		return
	}
	l.acct.release(l.heldBytes.Swap(0))
	l.heldRows.Store(0)
}

// HeldBytes reports the bytes currently charged by this query.
func (l *Life) HeldBytes() int64 {
	if l == nil {
		return 0
	}
	return l.heldBytes.Load()
}
