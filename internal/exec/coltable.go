package exec

import (
	"sort"
	"sync"
)

// ColTable is one table in struct-of-arrays layout: one []int64 per
// column, all of length N. It is the primary storage of a Dataset —
// the vectorized operators slice column vectors straight out of it —
// while the row-at-a-time operators read it through a lazily
// materialized (and cached) row view. A ColTable must not be mutated
// after construction; the serving layer executes concurrent requests
// against it.
type ColTable struct {
	// Cols holds the column vectors, aligned with the catalog's column
	// order.
	Cols [][]int64
	// N is the row count (the length of every column).
	N int

	rowsOnce sync.Once
	rows     []Row
}

// NewColTable transposes row-major rows (width columns) into columnar
// layout. The input rows are not retained.
func NewColTable(rows [][]int64, width int) *ColTable {
	if len(rows) > 0 && width < len(rows[0]) {
		width = len(rows[0])
	}
	t := &ColTable{N: len(rows), Cols: make([][]int64, width)}
	// One slab for all columns: column c occupies slab[c*N : (c+1)*N].
	slab := make([]int64, width*len(rows))
	for c := 0; c < width; c++ {
		col := slab[c*len(rows) : (c+1)*len(rows) : (c+1)*len(rows)]
		for i, r := range rows {
			col[i] = r[c]
		}
		t.Cols[c] = col
	}
	return t
}

// Width returns the column count.
func (t *ColTable) Width() int { return len(t.Cols) }

// RowView returns the table's rows in row-major layout, materialized
// on first use and cached (the view is shared; callers must not
// mutate it). Row operators — scans, brute-force validation — read
// the table through this view.
func (t *ColTable) RowView() []Row {
	t.rowsOnce.Do(func() {
		t.rows = t.materialize(nil)
	})
	return t.rows
}

// materialize builds row-major rows, in permutation order when perm
// is non-nil.
func (t *ColTable) materialize(perm []int32) []Row {
	w := len(t.Cols)
	n := t.N
	if perm != nil {
		n = len(perm)
	}
	rows := make([]Row, n)
	slab := make([]int64, n*w)
	for i := 0; i < n; i++ {
		row := slab[i*w : (i+1)*w : (i+1)*w]
		src := i
		if perm != nil {
			src = int(perm[i])
		}
		for c := 0; c < w; c++ {
			row[c] = t.Cols[c][src]
		}
		rows[i] = Row(row)
	}
	return rows
}

// IndexView is one presorted view of a ColTable: a permutation vector
// into the base table such that reading rows in perm order yields the
// index ordering. Keeping a permutation instead of copied rows is what
// makes index views cheap at millions of rows — 4 bytes per row
// instead of a full row copy per index.
type IndexView struct {
	// Perm maps view position to base-table row number.
	Perm []int32
	// Keys are the index's key column positions (catalog order).
	Keys []int
	// Identity reports that Perm is the identity permutation — the base
	// table already lies in index order (common for generation-ordered
	// keys). Scans use it to skip the gather and read the table's
	// columns zero-copy.
	Identity bool

	table    *ColTable
	rowsOnce sync.Once
	rows     []Row
}

// RowView returns the view's rows (base rows in index order),
// materialized on first use and cached.
func (v *IndexView) RowView() []Row {
	v.rowsOnce.Do(func() {
		v.rows = v.table.materialize(v.Perm)
	})
	return v.rows
}

// buildIndexView sorts a permutation of t stably by the key columns.
func buildIndexView(t *ColTable, keys []int) *IndexView {
	perm := make([]int32, t.N)
	for i := range perm {
		perm[i] = int32(i)
	}
	stableSortPerm(perm, t.Cols, keys)
	identity := true
	for i, p := range perm {
		if int(p) != i {
			identity = false
			break
		}
	}
	return &IndexView{Perm: perm, Keys: keys, Identity: identity, table: t}
}

// stableSortPerm sorts perm so that the referenced rows are
// non-decreasing lexicographically on the key columns; ties keep base
// order (the stability BuildIndexes guaranteed when it copied rows).
func stableSortPerm(perm []int32, cols [][]int64, keys []int) {
	sort.Slice(perm, func(i, j int) bool {
		a, b := perm[i], perm[j]
		for _, k := range keys {
			col := cols[k]
			if col[a] != col[b] {
				return col[a] < col[b]
			}
		}
		return a < b // base position breaks ties: stable and deterministic
	})
}
