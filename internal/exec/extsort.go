package exec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
)

// ExtSort is the spilling external sort: it materializes its input in
// bounded in-memory runs, flushes each full run — sorted — to a spill
// file, and merges the spilled runs (plus the final in-memory run) with
// a k-way heap. Memory stays charged through the pipeline's Life like
// the in-memory Sort's, but only for the current run: a flushed run's
// charge is released when its rows move to disk, so a sort whose input
// exceeds the query budget still completes as long as one run fits.
// The merge is globally stable: runs are sorted stably and the heap
// breaks key ties by run generation order.
type ExtSort struct {
	In   Iterator
	Keys []int
	Life *Life
	// MaxRunBytes bounds the in-memory run (rowBytes accounting, like
	// the budget's); crossing it flushes the run. Zero disables the
	// size trigger — runs then flush only when the budget pushes back.
	MaxRunBytes int64
	// Dir is the spill directory ("" means the OS temp directory).
	Dir string
	// St, when set, receives the spill counters (SpillRuns,
	// SpilledBytes) as runs flush.
	St *OpStats

	run      []Row
	runBytes int64
	width    int
	runs     []*spillRun
	heap     []mergeEntry
	memPos   int
	alloc    rowAlloc
	rowBuf   []byte
}

// spillRun is one flushed run: a file of rows×width little-endian
// int64s, read back sequentially during the merge.
type spillRun struct {
	f    *os.File
	br   *bufio.Reader
	rows int64
	read int64
}

// mergeEntry is one heap slot: the head row of source src. Sources
// 0..len(runs)-1 are the spilled runs in generation order; source
// len(runs) is the final in-memory run (generated last, so key ties
// break toward the spilled runs — global stability).
type mergeEntry struct {
	row Row
	src int
}

// Open implements Iterator: it drains and sorts the entire input
// before the first Next, spilling as the run bound or the memory
// budget demands. Like Sort, it closes its input inside Open on every
// path — the input is fully consumed here; spill files live until the
// sort's own Close.
func (s *ExtSort) Open() error {
	s.run, s.runBytes, s.runs, s.heap, s.memPos, s.width = nil, 0, nil, nil, 0, 0
	if err := s.In.Open(); err != nil {
		s.In.Close()
		return err
	}
	for {
		row, ok, err := s.In.Next()
		if err != nil {
			s.In.Close()
			return err
		}
		if !ok {
			break
		}
		if s.width == 0 {
			s.width = len(row)
		}
		if err := s.add(row); err != nil {
			s.In.Close()
			return err
		}
	}
	if err := s.In.Close(); err != nil {
		return err
	}
	s.sortRun()
	if len(s.runs) == 0 {
		return nil // everything fit: serve the single run from memory
	}
	// Seed the merge heap with every source's head row.
	for i := range s.runs {
		row, ok, err := s.readRow(s.runs[i])
		if err != nil {
			return err
		}
		if ok {
			s.push(mergeEntry{row: row, src: i})
		}
	}
	if len(s.run) > 0 {
		s.push(mergeEntry{row: s.run[0], src: len(s.runs)})
		s.memPos = 1
	}
	return nil
}

// add appends one row to the current run, flushing first when the run
// is full or the budget pushes back. A budget failure with an empty
// run is terminal: not even one row fits.
func (s *ExtSort) add(row Row) error {
	if err := s.Life.holdRow(row); err != nil {
		if len(s.run) == 0 {
			return err
		}
		if ferr := s.flushRun(); ferr != nil {
			return ferr
		}
		if err := s.Life.holdRow(row); err != nil {
			return err
		}
	}
	s.run = append(s.run, row)
	s.runBytes += rowBytes(row)
	if s.MaxRunBytes > 0 && s.runBytes >= s.MaxRunBytes {
		return s.flushRun()
	}
	return nil
}

func (s *ExtSort) sortRun() {
	keys := s.Keys
	run := s.run
	sort.SliceStable(run, func(i, j int) bool { return lessByKeys(run[i], run[j], keys) })
}

// flushRun sorts the current run, writes it to a spill file and
// releases its memory charge — the rows now live on disk.
func (s *ExtSort) flushRun() error {
	s.sortRun()
	f, err := os.CreateTemp(s.Dir, "extsort-*.run")
	if err != nil {
		return fmt.Errorf("exec: external sort spill: %w", err)
	}
	r := &spillRun{f: f, rows: int64(len(s.run))}
	s.runs = append(s.runs, r) // registered first so Close always removes it
	w := bufio.NewWriter(f)
	if s.rowBuf == nil {
		s.rowBuf = make([]byte, s.width*8)
	}
	for _, row := range s.run {
		for c, v := range row {
			binary.LittleEndian.PutUint64(s.rowBuf[c*8:], uint64(v))
		}
		if _, err := w.Write(s.rowBuf[:len(row)*8]); err != nil {
			return fmt.Errorf("exec: external sort spill: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("exec: external sort spill: %w", err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		return fmt.Errorf("exec: external sort spill: %w", err)
	}
	r.br = bufio.NewReader(f)
	if s.St != nil {
		s.St.SpillRuns++
		s.St.SpilledBytes += r.rows * int64(s.width) * 8
	}
	s.Life.release(int64(len(s.run)), s.runBytes)
	s.run = s.run[:0]
	s.runBytes = 0
	return nil
}

// readRow reads one row back from a spill file; rows are carved from
// the chunk allocator so they outlive the sort, as handed-out rows
// must.
func (s *ExtSort) readRow(r *spillRun) (Row, bool, error) {
	if r.read >= r.rows {
		return nil, false, nil
	}
	if _, err := io.ReadFull(r.br, s.rowBuf[:s.width*8]); err != nil {
		return nil, false, fmt.Errorf("exec: external sort read: %w", err)
	}
	r.read++
	row := s.alloc.carve(s.width)
	for c := range row {
		row[c] = int64(binary.LittleEndian.Uint64(s.rowBuf[c*8:]))
	}
	return row, true, nil
}

// entryLess orders the merge heap: by sort keys, then by run
// generation for stability.
func (s *ExtSort) entryLess(a, b mergeEntry) bool {
	if lessByKeys(a.row, b.row, s.Keys) {
		return true
	}
	if lessByKeys(b.row, a.row, s.Keys) {
		return false
	}
	return a.src < b.src
}

func (s *ExtSort) push(e mergeEntry) {
	s.heap = append(s.heap, e)
	i := len(s.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.entryLess(s.heap[i], s.heap[parent]) {
			break
		}
		s.heap[i], s.heap[parent] = s.heap[parent], s.heap[i]
		i = parent
	}
}

func (s *ExtSort) pop() mergeEntry {
	top := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heap = s.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(s.heap) && s.entryLess(s.heap[l], s.heap[min]) {
			min = l
		}
		if r < len(s.heap) && s.entryLess(s.heap[r], s.heap[min]) {
			min = r
		}
		if min == i {
			return top
		}
		s.heap[i], s.heap[min] = s.heap[min], s.heap[i]
		i = min
	}
}

// Next implements Iterator.
func (s *ExtSort) Next() (Row, bool, error) {
	if len(s.runs) == 0 {
		if s.memPos >= len(s.run) {
			return nil, false, nil
		}
		row := s.run[s.memPos]
		s.memPos++
		return row, true, nil
	}
	if len(s.heap) == 0 {
		return nil, false, nil
	}
	e := s.pop()
	if e.src < len(s.runs) {
		row, ok, err := s.readRow(s.runs[e.src])
		if err != nil {
			return nil, false, err
		}
		if ok {
			s.push(mergeEntry{row: row, src: e.src})
		}
	} else if s.memPos < len(s.run) {
		s.push(mergeEntry{row: s.run[s.memPos], src: e.src})
		s.memPos++
	}
	return e.row, true, nil
}

// Close implements Iterator: spill files are closed and removed on
// every path — success, error or cancellation mid-spill. The input was
// already closed inside Open (Sort's convention).
func (s *ExtSort) Close() error {
	var err error
	for _, r := range s.runs {
		if r.f != nil {
			name := r.f.Name()
			if cerr := r.f.Close(); cerr != nil && err == nil {
				err = cerr
			}
			if rerr := os.Remove(name); rerr != nil && err == nil {
				err = rerr
			}
			r.f = nil
		}
	}
	s.runs, s.run, s.heap = nil, nil, nil
	return err
}
