// Close-without-exhaust: a client that stops reading (or a serving
// layer that hits its row budget) closes the pipeline while operators
// are mid-stream. Every opened operator — including the morsel workers
// behind an exchange — must still close exactly once. The test lives in
// an external package because the leak tracker (faultinject) imports
// exec.
package exec_test

import (
	"testing"

	"orderopt/internal/exec"
	"orderopt/internal/faultinject"
	"orderopt/internal/optimizer"
	"orderopt/internal/plan"
	"orderopt/internal/query"
	"orderopt/internal/tpcr"
)

func TestLimitCloseWithoutExhaustLeaksNothing(t *testing.T) {
	reg := exec.TPCRRegistry()
	ds, ok := reg.Get("tpcr-mid")
	if !ok {
		t.Fatal("no tpcr-mid dataset")
	}
	for _, dop := range []int{1, 4} {
		_, g, err := tpcr.OrderStreamGraph()
		if err != nil {
			t.Fatal(err)
		}
		ds.ApplyStats(g)
		a, err := query.Analyze(g, query.AnalyzeOptions{UseIndexes: true, TrackGroupings: true})
		if err != nil {
			t.Fatal(err)
		}
		cfg := optimizer.DefaultConfig(optimizer.ModeDFSM)
		cfg.MaxDOP = dop
		res, err := optimizer.Optimize(a, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// A Limit on top mirrors the top-k pipelines this failure mode
		// hits in practice; the pull stops well before it fills.
		limited := &plan.Node{Op: plan.Limit, Limit: 50, Left: res.Best, Card: 50}

		tr := &faultinject.Tracker{}
		r := ds.Runner(a)
		r.MaxDOP = dop
		r.Hook = tr.Hook()
		p, err := r.Compile(limited)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Root.Open(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, ok, err := p.Root.Next(); err != nil || !ok {
				t.Fatalf("dop=%d: pull %d failed: ok=%v err=%v", dop, i, ok, err)
			}
		}
		if err := p.Root.Close(); err != nil {
			t.Fatalf("dop=%d: close: %v", dop, err)
		}
		if tr.Opened() == 0 {
			t.Fatalf("dop=%d: tracker saw no operators; the hook seam is broken", dop)
		}
		if leaked := tr.Leaked(); leaked != 0 {
			t.Fatalf("dop=%d: %d operators opened but never closed", dop, leaked)
		}
	}
}
