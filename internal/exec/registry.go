package exec

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// This file is the dataset lifecycle layer: a thread-safe registry
// whose datasets are loaded on first use, pinned (refcounted) while
// queries run over them, and LRU-evicted under a resident-byte budget.
// The serving layer acquires a pin per request, so eviction can never
// free storage a pipeline is still scanning; an evicted dataset is
// simply rebuilt by its loader on the next acquire. Eagerly Registered
// datasets have no loader and are therefore never evicted (there would
// be no way back).

// ErrUnknownDataset is wrapped by Acquire/Get failures for names that
// were never registered; the serving layer maps it to 400.
var ErrUnknownDataset = errors.New("exec: unknown dataset")

// DatasetLoader builds a dataset on demand. Loaders run outside the
// registry lock (loads can take seconds at scale) and must return a
// fully built dataset — indexes presorted — ready for concurrent use.
type DatasetLoader func() (*Dataset, error)

// regEntry is one registered dataset's lifecycle state. All fields are
// guarded by Registry.mu except the dataset's own immutable content.
type regEntry struct {
	name string
	desc string
	load DatasetLoader // nil for sticky (eagerly registered) entries

	ds      *Dataset // non-nil while resident
	bytes   int64    // MemBytes() of ds while resident
	pins    int      // acquires not yet released; blocks eviction
	lastUse int64    // registry clock at last acquire (LRU order)

	// loading is non-nil while one goroutine runs the loader; other
	// acquirers wait on it instead of loading twice.
	loading chan struct{}
}

// Registry is a named set of datasets; the first registered one is the
// default. It is safe for concurrent use: datasets may be registered
// eagerly (Register — resident for the registry's lifetime) or lazily
// (RegisterLazy — built by a loader on first Acquire and evictable).
// With a budget set, loading a dataset evicts least-recently-used
// unpinned lazy datasets until the newcomer fits; when everything
// resident is pinned or sticky the load fails with an error wrapping
// ErrBudgetExceeded, which the serving layer sheds as 429.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*regEntry
	names   []string
	budget  int64 // resident-byte budget; 0 = unlimited
	clock   int64 // LRU clock, incremented per acquire

	resident  atomic.Int64 // bytes resident now (gauge)
	highWater atomic.Int64 // max resident bytes ever observed
	loads     atomic.Int64 // loader invocations that went resident
	evictions atomic.Int64 // datasets dropped for space (incl. Evict)
}

// NewRegistry returns an empty registry with no byte budget.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*regEntry)}
}

// SetBudget bounds the resident bytes of loaded datasets; 0 removes
// the bound. Lowering the budget evicts LRU unpinned datasets
// immediately (best effort — pinned and sticky datasets stay).
func (r *Registry) SetBudget(bytes int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.budget = bytes
	if bytes > 0 {
		r.evictLRULocked(0)
	}
}

// Budget returns the resident-byte budget (0 = unlimited).
func (r *Registry) Budget() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.budget
}

// Register adds d eagerly: resident immediately and for the registry's
// lifetime (no loader, so never evicted). A dataset with the same name
// is replaced.
func (r *Registry) Register(d *Dataset) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.entryLocked(d.Name)
	if e.ds != nil {
		r.residentAdd(-e.bytes)
	}
	e.desc = d.Desc
	e.load = nil
	e.ds = d
	e.bytes = d.MemBytes()
	r.residentAdd(e.bytes)
}

// RegisterLazy adds a dataset that load builds on first Acquire. The
// name joins the registry order immediately (Names lists it, and it
// can be the default) but no memory is held until a query asks for it.
// Registering over an existing name replaces it; a resident dataset
// under the old registration is dropped.
func (r *Registry) RegisterLazy(name, desc string, load DatasetLoader) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.entryLocked(name)
	if e.ds != nil {
		r.residentAdd(-e.bytes)
	}
	e.desc = desc
	e.load = load
	e.ds = nil
	e.bytes = 0
}

// entryLocked returns the entry for name, creating and ordering it if
// new. Caller holds r.mu.
func (r *Registry) entryLocked(name string) *regEntry {
	e, ok := r.entries[name]
	if !ok {
		e = &regEntry{name: name}
		r.entries[name] = e
		r.names = append(r.names, name)
	}
	return e
}

func (r *Registry) residentAdd(delta int64) {
	n := r.resident.Add(delta)
	for {
		hw := r.highWater.Load()
		if n <= hw || r.highWater.CompareAndSwap(hw, n) {
			return
		}
	}
}

// Acquire returns the named dataset pinned against eviction; the empty
// name selects the default (first registered). Lazy datasets are
// loaded on first use — concurrent acquirers of a loading dataset wait
// for the one in-flight load rather than loading twice. The returned
// release function drops the pin and must be called exactly once, when
// the query is done reading the dataset. Errors wrap ErrUnknownDataset
// (no such name) or ErrBudgetExceeded (the load does not fit the
// registry budget next to what is pinned).
func (r *Registry) Acquire(name string) (*Dataset, func(), error) {
	r.mu.Lock()
	if name == "" {
		if len(r.names) == 0 {
			r.mu.Unlock()
			return nil, nil, fmt.Errorf("%w: registry is empty", ErrUnknownDataset)
		}
		name = r.names[0]
	}
	for {
		e, ok := r.entries[name]
		if !ok {
			r.mu.Unlock()
			return nil, nil, fmt.Errorf("%w %q", ErrUnknownDataset, name)
		}
		if e.ds != nil {
			e.pins++
			r.clock++
			e.lastUse = r.clock
			ds := e.ds
			r.mu.Unlock()
			return ds, r.releaseFunc(e), nil
		}
		if e.loading != nil {
			// Another goroutine is running the loader; wait for it and
			// re-examine (it may have failed, been evicted, or succeeded).
			ch := e.loading
			r.mu.Unlock()
			<-ch
			r.mu.Lock()
			continue
		}
		if e.load == nil {
			// A sticky entry with no dataset cannot happen via the public
			// API; treat it as unknown rather than panic.
			r.mu.Unlock()
			return nil, nil, fmt.Errorf("%w %q", ErrUnknownDataset, name)
		}
		ch := make(chan struct{})
		e.loading = ch
		load := e.load
		r.mu.Unlock()

		ds, err := load()

		r.mu.Lock()
		e.loading = nil
		if err == nil && ds == nil {
			err = fmt.Errorf("exec: loader for dataset %q returned nil", name)
		}
		if err == nil {
			bytes := ds.MemBytes()
			if ferr := r.fitLocked(bytes); ferr != nil {
				err = ferr // drop the freshly built dataset; nothing was charged
			} else {
				e.ds, e.bytes = ds, bytes
				r.residentAdd(bytes)
				r.loads.Add(1)
			}
		}
		close(ch)
		if err != nil {
			r.mu.Unlock()
			return nil, nil, err
		}
		// Loop back to the resident branch to take the pin.
	}
}

// releaseFunc returns the once-guarded pin release for e.
func (r *Registry) releaseFunc(e *regEntry) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			r.mu.Lock()
			e.pins--
			r.mu.Unlock()
		})
	}
}

// fitLocked makes room for need bytes under the budget, evicting LRU
// unpinned lazy datasets. Caller holds r.mu.
func (r *Registry) fitLocked(need int64) error {
	if r.budget <= 0 {
		return nil
	}
	if err := r.evictLRULocked(need); err != nil {
		return err
	}
	return nil
}

// evictLRULocked evicts least-recently-used unpinned lazy datasets
// until resident+need fits the budget, or fails with a budget error
// when what remains is pinned or sticky. Caller holds r.mu and has
// checked budget > 0.
func (r *Registry) evictLRULocked(need int64) error {
	for r.resident.Load()+need > r.budget {
		var victim *regEntry
		for _, e := range r.entries {
			if e.ds == nil || e.pins > 0 || e.load == nil {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victim = e
			}
		}
		if victim == nil {
			return fmt.Errorf("%w: %d bytes needed, %d of %d resident and pinned or unevictable",
				ErrBudgetExceeded, need, r.resident.Load(), r.budget)
		}
		r.evictLocked(victim)
	}
	return nil
}

// evictLocked drops victim's resident dataset. Caller holds r.mu.
func (r *Registry) evictLocked(victim *regEntry) {
	r.residentAdd(-victim.bytes)
	victim.ds, victim.bytes = nil, 0
	r.evictions.Add(1)
}

// Evict drops the named dataset's resident copy if it is loaded,
// unpinned and reloadable, reporting whether anything was evicted.
// In-flight queries that acquired the dataset before the call keep
// their (still valid) reference; the next Acquire reloads.
func (r *Registry) Evict(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok || e.ds == nil || e.pins > 0 || e.load == nil {
		return false
	}
	r.evictLocked(e)
	return true
}

// Get returns the named dataset (loading it if lazy and absent); the
// empty name selects the default (first registered). It takes no pin —
// callers that execute against the dataset while eviction may run
// concurrently should use Acquire. Load failures report as not-found.
func (r *Registry) Get(name string) (*Dataset, bool) {
	ds, release, err := r.Acquire(name)
	if err != nil {
		return nil, false
	}
	release()
	return ds, true
}

// Names lists the registered dataset names in registration order,
// resident or not.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.names...)
}

// DatasetInfo describes one registry entry for stats endpoints.
type DatasetInfo struct {
	Name      string `json:"name"`
	Desc      string `json:"desc,omitempty"`
	Resident  bool   `json:"resident"`
	Evictable bool   `json:"evictable"`
	Bytes     int64  `json:"bytes,omitempty"`
	Rows      int64  `json:"rows,omitempty"`
	Pins      int    `json:"pins,omitempty"`
}

// Info snapshots every entry in registration order.
func (r *Registry) Info() []DatasetInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]DatasetInfo, 0, len(r.names))
	for _, name := range r.names {
		e := r.entries[name]
		info := DatasetInfo{
			Name:      name,
			Desc:      e.desc,
			Resident:  e.ds != nil,
			Evictable: e.load != nil,
			Bytes:     e.bytes,
			Pins:      e.pins,
		}
		if e.ds != nil {
			info.Rows = e.ds.TotalRows()
		}
		out = append(out, info)
	}
	return out
}

// ResidentBytes reports the bytes currently resident across loaded
// datasets — the serving layer's admission reads it next to the
// Accountant's query gauge.
func (r *Registry) ResidentBytes() int64 { return r.resident.Load() }

// HighWaterBytes reports the maximum resident bytes ever observed.
func (r *Registry) HighWaterBytes() int64 { return r.highWater.Load() }

// Loads reports how many loader runs went resident.
func (r *Registry) Loads() int64 { return r.loads.Load() }

// Evictions reports how many resident datasets were dropped.
func (r *Registry) Evictions() int64 { return r.evictions.Load() }
