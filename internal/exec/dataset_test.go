package exec

import (
	"testing"

	"orderopt/internal/query"
	"orderopt/internal/tpcr"
)

func TestTPCRRegistry(t *testing.T) {
	reg := TPCRRegistry()
	names := reg.Names()
	if len(names) != 3 || names[0] != "tpcr-small" {
		t.Fatalf("names = %v", names)
	}
	def, ok := reg.Get("")
	if !ok || def.Name != "tpcr-small" {
		t.Fatalf("default dataset = %v, %v", def, ok)
	}
	if _, ok := reg.Get("nope"); ok {
		t.Fatal("unknown dataset must not resolve")
	}
	cat := tpcr.Schema()
	for _, name := range names {
		ds, ok := reg.Get(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if ds.TotalRows() == 0 {
			t.Fatalf("%s is empty", name)
		}
		// Every index view exists, holds all rows (as a permutation of
		// the base table), and is sorted on the index columns.
		for table, byIndex := range ds.Views {
			ct, ok := cat.Table(table)
			if !ok {
				t.Fatalf("%s: indexed view for unknown table %s", name, table)
			}
			base := ds.Tables[table]
			for _, ix := range ct.Indexes {
				view, ok := byIndex[ix.Name]
				if !ok {
					t.Fatalf("%s: missing index view %s.%s", name, table, ix.Name)
				}
				if len(view.Perm) != base.N {
					t.Fatalf("%s: index view %s.%s has %d rows, table %d",
						name, table, ix.Name, len(view.Perm), base.N)
				}
				seen := make(map[int32]bool, len(view.Perm))
				for _, p := range view.Perm {
					if p < 0 || int(p) >= base.N || seen[p] {
						t.Fatalf("%s: index view %s.%s is not a permutation", name, table, ix.Name)
					}
					seen[p] = true
				}
				keys := make([]int, len(ix.Columns))
				for i, col := range ix.Columns {
					keys[i] = ct.ColumnIndex(col)
				}
				rows := view.RowView()
				if len(rows) != base.N || !SatisfiesOrdering(rows, keys) {
					t.Fatalf("%s: index view %s.%s not sorted", name, table, ix.Name)
				}
			}
		}
	}
}

func TestApplyStats(t *testing.T) {
	reg := TPCRRegistry()
	ds, _ := reg.Get("tpcr-small")
	_, g, err := tpcr.Query8Graph()
	if err != nil {
		t.Fatal(err)
	}
	ds.ApplyStats(g)
	var lineitem *query.Relation
	for i := range g.Relations {
		if g.Relations[i].Table.Name == "lineitem" {
			lineitem = &g.Relations[i]
		}
	}
	if lineitem == nil {
		t.Fatal("no lineitem relation")
	}
	if got := lineitem.Table.Rows; got != int64(ds.Tables["lineitem"].N) {
		t.Fatalf("lineitem rows = %d, want %d", got, ds.Tables["lineitem"].N)
	}
	for _, c := range lineitem.Table.Columns {
		if c.Distinct < 1 || c.Distinct > lineitem.Table.Rows {
			t.Fatalf("restated distinct out of range: %+v", c)
		}
	}
}

// TestColTableRoundTrip pins the columnar transposition: row-major in,
// struct-of-arrays storage, identical row-major view back out — and
// RawRows reproduces the generator's map exactly.
func TestColTableRoundTrip(t *testing.T) {
	raw := [][]int64{{1, 10, 100}, {2, 20, 200}, {3, 30, 300}}
	ct := NewColTable(raw, 0)
	if ct.N != 3 || ct.Width() != 3 {
		t.Fatalf("shape = %dx%d", ct.N, ct.Width())
	}
	if ct.Cols[1][2] != 30 {
		t.Fatalf("cols[1][2] = %d", ct.Cols[1][2])
	}
	view := ct.RowView()
	for i, r := range raw {
		for c, v := range r {
			if view[i][c] != v {
				t.Fatalf("view[%d][%d] = %d, want %d", i, c, view[i][c], v)
			}
		}
	}
	ds := NewDataset("rt", "round trip", map[string][][]int64{"t": raw})
	got := ds.RawRows()["t"]
	if len(got) != len(raw) {
		t.Fatalf("raw rows = %d", len(got))
	}
	for i := range raw {
		for c := range raw[i] {
			if got[i][c] != raw[i][c] {
				t.Fatalf("raw[%d][%d] = %d, want %d", i, c, got[i][c], raw[i][c])
			}
		}
	}
	if rows := ds.TableRows("t"); len(rows) != 3 || rows[2][0] != 3 {
		t.Fatalf("TableRows = %v", rows)
	}
	if ds.TableRows("missing") != nil {
		t.Fatal("missing table must return nil")
	}
	// Empty tables keep a well-defined width-0 shape.
	empty := NewColTable(nil, 0)
	if empty.N != 0 || len(empty.RowView()) != 0 {
		t.Fatalf("empty table: N=%d", empty.N)
	}
}

// TestGenSpecScale pins the scale-factor knob and the XL spec floor.
func TestGenSpecScale(t *testing.T) {
	s := tpcr.DefaultGenSpec().Scale(2)
	if s.LineItems != 400 || s.Orders != 120 {
		t.Fatalf("scaled spec = %+v", s)
	}
	tiny := tpcr.DefaultGenSpec().Scale(0.001)
	if tiny.Parts < 1 || tiny.LineItems < 1 {
		t.Fatalf("scale floor violated: %+v", tiny)
	}
	if xl := tpcr.XLGenSpec(); xl.LineItems < 1000000 {
		t.Fatalf("tpcr-xl must have ≥1M lineitems, got %d", xl.LineItems)
	}
}
