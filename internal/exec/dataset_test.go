package exec

import (
	"testing"

	"orderopt/internal/query"
	"orderopt/internal/tpcr"
)

func TestTPCRRegistry(t *testing.T) {
	reg := TPCRRegistry()
	names := reg.Names()
	if len(names) != 3 || names[0] != "tpcr-small" {
		t.Fatalf("names = %v", names)
	}
	def, ok := reg.Get("")
	if !ok || def.Name != "tpcr-small" {
		t.Fatalf("default dataset = %v, %v", def, ok)
	}
	if _, ok := reg.Get("nope"); ok {
		t.Fatal("unknown dataset must not resolve")
	}
	cat := tpcr.Schema()
	for _, name := range names {
		ds, ok := reg.Get(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if ds.TotalRows() == 0 {
			t.Fatalf("%s is empty", name)
		}
		// Every index view exists, holds all rows, and is sorted on the
		// index columns.
		for table, byIndex := range ds.Indexed {
			ct, ok := cat.Table(table)
			if !ok {
				t.Fatalf("%s: indexed view for unknown table %s", name, table)
			}
			for _, ix := range ct.Indexes {
				sorted, ok := byIndex[ix.Name]
				if !ok {
					t.Fatalf("%s: missing index view %s.%s", name, table, ix.Name)
				}
				if len(sorted) != len(ds.Rows[table]) {
					t.Fatalf("%s: index view %s.%s has %d rows, table %d",
						name, table, ix.Name, len(sorted), len(ds.Rows[table]))
				}
				keys := make([]int, len(ix.Columns))
				for i, col := range ix.Columns {
					keys[i] = ct.ColumnIndex(col)
				}
				if !SatisfiesOrdering(asRows(sorted), keys) {
					t.Fatalf("%s: index view %s.%s not sorted", name, table, ix.Name)
				}
			}
		}
	}
}

func TestApplyStats(t *testing.T) {
	reg := TPCRRegistry()
	ds, _ := reg.Get("tpcr-small")
	_, g, err := tpcr.Query8Graph()
	if err != nil {
		t.Fatal(err)
	}
	ds.ApplyStats(g)
	var lineitem *query.Relation
	for i := range g.Relations {
		if g.Relations[i].Table.Name == "lineitem" {
			lineitem = &g.Relations[i]
		}
	}
	if lineitem == nil {
		t.Fatal("no lineitem relation")
	}
	if got := lineitem.Table.Rows; got != int64(len(ds.Rows["lineitem"])) {
		t.Fatalf("lineitem rows = %d, want %d", got, len(ds.Rows["lineitem"]))
	}
	for _, c := range lineitem.Table.Columns {
		if c.Distinct < 1 || c.Distinct > lineitem.Table.Rows {
			t.Fatalf("restated distinct out of range: %+v", c)
		}
	}
}
