package exec_test

import (
	"fmt"

	"orderopt/internal/exec"
	"orderopt/internal/optimizer"
	"orderopt/internal/query"
	"orderopt/internal/tpcr"
)

// ExampleRunner plans the TPC-R order-flow query, executes the chosen
// plan over a registered dataset, and shows that the pipeline
// delivered the required order without sorting a single row — the
// order-optimization framework's runtime payoff.
func ExampleRunner() {
	_, g, err := tpcr.OrderStreamGraph()
	if err != nil {
		panic(err)
	}
	ds, _ := exec.TPCRRegistry().Get("tpcr-small")
	ds.ApplyStats(g) // plan against the dataset's real statistics

	a, err := query.Analyze(g, query.AnalyzeOptions{UseIndexes: true})
	if err != nil {
		panic(err)
	}
	res, err := optimizer.Optimize(a, optimizer.DefaultConfig(optimizer.ModeDFSM))
	if err != nil {
		panic(err)
	}

	pipe, err := ds.Runner(a).Compile(res.Best)
	if err != nil {
		panic(err)
	}
	rows, err := pipe.Execute()
	if err != nil {
		panic(err)
	}
	fmt.Printf("rows: %d, rows sorted: %d\n", len(rows), pipe.RowsSorted())
	// Output:
	// rows: 29, rows sorted: 0
}

// ExampleRunner_Compile compiles a plan into a pipeline and reads the
// per-operator counters after execution — the executor's EXPLAIN
// ANALYZE.
func ExampleRunner_Compile() {
	_, g, err := tpcr.OrderStreamGraph()
	if err != nil {
		panic(err)
	}
	ds, _ := exec.TPCRRegistry().Get("tpcr-mid")
	ds.ApplyStats(g)

	a, err := query.Analyze(g, query.AnalyzeOptions{UseIndexes: true})
	if err != nil {
		panic(err)
	}
	res, err := optimizer.Optimize(a, optimizer.DefaultConfig(optimizer.ModeDFSM))
	if err != nil {
		panic(err)
	}

	pipe, err := ds.Runner(a).Compile(res.Best)
	if err != nil {
		panic(err)
	}
	if _, err := pipe.Execute(); err != nil {
		panic(err)
	}
	for _, op := range pipe.Ops {
		fmt.Printf("%s %s rows=%d\n", op.Op, op.Detail, op.Rows)
	}
	// Output:
	// MergeJoin orders.o_orderkey = lineitem.l_orderkey rows=2314
	// HashJoin customer.c_custkey = orders.o_custkey rows=351
	// IndexScan orders/orders_pk rows=351
	// TableScan customer rows=500
	// IndexScan lineitem/lineitem_orderkey rows=8000
}
