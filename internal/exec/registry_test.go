package exec

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// tinyDataset builds a dataset of a known, nonzero size: one table,
// two columns, rows rows.
func tinyDataset(name string, rows int) *Dataset {
	raw := make([][]int64, rows)
	for i := range raw {
		raw[i] = []int64{int64(i), int64(i * 2)}
	}
	return NewDataset(name, "registry test fixture", map[string][][]int64{"t": raw})
}

// countingLoader wraps a dataset build with an invocation counter.
func countingLoader(name string, rows int, calls *atomic.Int64) DatasetLoader {
	return func() (*Dataset, error) {
		calls.Add(1)
		return tinyDataset(name, rows), nil
	}
}

// TestRegistryLazyLoad: a lazy dataset is listed before loading, holds
// no memory until acquired, loads exactly once across repeated
// acquires, and the gauges track residency.
func TestRegistryLazyLoad(t *testing.T) {
	var calls atomic.Int64
	r := NewRegistry()
	r.RegisterLazy("a", "first", countingLoader("a", 16, &calls))

	if got := r.Names(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("Names() = %v before load, want [a]", got)
	}
	if got := r.ResidentBytes(); got != 0 {
		t.Fatalf("resident %d bytes before any acquire, want 0", got)
	}
	info := r.Info()
	if len(info) != 1 || info[0].Resident || !info[0].Evictable {
		t.Fatalf("pre-load info = %+v, want non-resident evictable entry", info)
	}

	ds, release, err := r.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name != "a" {
		t.Fatalf("acquired dataset %q, want a", ds.Name)
	}
	if got := r.ResidentBytes(); got != ds.MemBytes() {
		t.Errorf("resident %d bytes, want MemBytes %d", got, ds.MemBytes())
	}
	release()
	release() // second release must be a no-op, not a double-unpin

	if _, release2, err := r.Acquire("a"); err != nil {
		t.Fatal(err)
	} else {
		release2()
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("loader ran %d times across two acquires, want 1", got)
	}
	if got := r.Loads(); got != 1 {
		t.Errorf("Loads() = %d, want 1", got)
	}

	// The empty name selects the default (first registered).
	if ds, rel, err := r.Acquire(""); err != nil || ds.Name != "a" {
		t.Errorf("Acquire(\"\") = %v, %v, want the default dataset", ds, err)
	} else {
		rel()
	}
}

// TestRegistryUnknown: unknown names and empty registries report
// ErrUnknownDataset, and Get mirrors that as not-found.
func TestRegistryUnknown(t *testing.T) {
	r := NewRegistry()
	if _, _, err := r.Acquire(""); !errors.Is(err, ErrUnknownDataset) {
		t.Errorf("empty registry Acquire: %v, want ErrUnknownDataset", err)
	}
	r.Register(tinyDataset("a", 4))
	if _, _, err := r.Acquire("nope"); !errors.Is(err, ErrUnknownDataset) {
		t.Errorf("unknown name Acquire: %v, want ErrUnknownDataset", err)
	}
	if _, ok := r.Get("nope"); ok {
		t.Error("Get of an unknown name reported found")
	}
}

// TestRegistryLRUEviction: with a budget fit for two of three equal
// datasets, loading the third evicts the least recently used one, and
// re-acquiring an evicted dataset reloads it.
func TestRegistryLRUEviction(t *testing.T) {
	var loadsA, loadsB, loadsC atomic.Int64
	r := NewRegistry()
	r.RegisterLazy("a", "", countingLoader("a", 32, &loadsA))
	r.RegisterLazy("b", "", countingLoader("b", 32, &loadsB))
	r.RegisterLazy("c", "", countingLoader("c", 32, &loadsC))

	one := tinyDataset("a", 32).MemBytes()
	r.SetBudget(2 * one)

	acquire := func(name string) {
		t.Helper()
		_, release, err := r.Acquire(name)
		if err != nil {
			t.Fatalf("acquire %s: %v", name, err)
		}
		release()
	}
	resident := func() map[string]bool {
		out := map[string]bool{}
		for _, info := range r.Info() {
			out[info.Name] = info.Resident
		}
		return out
	}

	acquire("a")
	acquire("b")
	if got := resident(); !got["a"] || !got["b"] {
		t.Fatalf("residency after loading a,b: %v", got)
	}

	// Touch a so b becomes the LRU victim, then load c.
	acquire("a")
	acquire("c")
	got := resident()
	if got["b"] {
		t.Errorf("b still resident after c displaced it: %v", got)
	}
	if !got["a"] || !got["c"] {
		t.Errorf("residency after eviction: %v, want a and c", got)
	}
	if r.Evictions() != 1 {
		t.Errorf("Evictions() = %d, want 1", r.Evictions())
	}
	if r.ResidentBytes() > 2*one {
		t.Errorf("resident %d bytes over budget %d", r.ResidentBytes(), 2*one)
	}

	// Re-acquiring b reloads it (and evicts the new LRU, a).
	acquire("b")
	if loadsB.Load() != 2 {
		t.Errorf("b loaded %d times, want 2 (evicted and reloaded)", loadsB.Load())
	}
	if got := resident(); got["a"] {
		t.Errorf("a survived the reload of b under a two-dataset budget: %v", got)
	}

	// High water never exceeded the budget: the registry evicts before
	// charging, not after.
	if hw := r.HighWaterBytes(); hw > 2*one {
		t.Errorf("high water %d bytes over budget %d", hw, 2*one)
	}
}

// TestRegistryPinBlocksEviction: a pinned dataset cannot be evicted —
// a load that needs its space fails with a budget error — and the
// space frees the moment the pin is released.
func TestRegistryPinBlocksEviction(t *testing.T) {
	var calls atomic.Int64
	r := NewRegistry()
	r.RegisterLazy("a", "", countingLoader("a", 32, &calls))
	r.RegisterLazy("b", "", countingLoader("b", 32, &calls))
	r.SetBudget(tinyDataset("a", 32).MemBytes()) // room for exactly one

	dsA, releaseA, err := r.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	if r.Evict("a") {
		t.Error("Evict succeeded on a pinned dataset")
	}
	if _, _, err := r.Acquire("b"); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("loading b over a pinned registry: %v, want ErrBudgetExceeded", err)
	}
	// The pinned dataset stayed intact through the failed load.
	if dsA.Tables["t"] == nil || dsA.Tables["t"].N == 0 {
		t.Fatal("pinned dataset lost its storage")
	}

	releaseA()
	if _, releaseB, err := r.Acquire("b"); err != nil {
		t.Fatalf("loading b after the pin released: %v", err)
	} else {
		releaseB()
	}
}

// TestRegistryStickyNeverEvicted: eagerly Registered datasets have no
// loader and are never evicted, even under pressure; lazy loads that
// cannot fit next to them fail with a budget error.
func TestRegistryStickyNeverEvicted(t *testing.T) {
	var calls atomic.Int64
	r := NewRegistry()
	sticky := tinyDataset("sticky", 32)
	r.Register(sticky)
	r.RegisterLazy("lazy", "", countingLoader("lazy", 32, &calls))
	r.SetBudget(sticky.MemBytes()) // the sticky dataset fills the budget

	if r.Evict("sticky") {
		t.Error("Evict succeeded on a sticky dataset")
	}
	if _, _, err := r.Acquire("lazy"); !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("lazy load next to a budget-filling sticky dataset: %v, want ErrBudgetExceeded", err)
	}
	if ds, ok := r.Get("sticky"); !ok || ds != sticky {
		t.Error("sticky dataset not retrievable after the failed lazy load")
	}
}

// TestRegistryLoadTooBig: a dataset larger than the whole budget can
// never fit; the loader's work is dropped and the error is a budget
// error, not a panic or a partial charge.
func TestRegistryLoadTooBig(t *testing.T) {
	var calls atomic.Int64
	r := NewRegistry()
	r.RegisterLazy("big", "", countingLoader("big", 64, &calls))
	r.SetBudget(tinyDataset("big", 64).MemBytes() / 2)

	if _, _, err := r.Acquire("big"); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("oversized load: %v, want ErrBudgetExceeded", err)
	}
	if got := r.ResidentBytes(); got != 0 {
		t.Errorf("resident %d bytes after a failed load, want 0", got)
	}
	// The failure is not sticky: raising the budget lets the next
	// acquire succeed.
	r.SetBudget(0)
	if _, release, err := r.Acquire("big"); err != nil {
		t.Fatalf("acquire after raising the budget: %v", err)
	} else {
		release()
	}
}

// TestRegistryLoaderError: loader failures propagate to every waiting
// acquirer and leave the entry loadable again.
func TestRegistryLoaderError(t *testing.T) {
	var calls atomic.Int64
	boom := errors.New("generator exploded")
	r := NewRegistry()
	r.RegisterLazy("flaky", "", func() (*Dataset, error) {
		if calls.Add(1) == 1 {
			return nil, boom
		}
		return tinyDataset("flaky", 8), nil
	})

	if _, _, err := r.Acquire("flaky"); !errors.Is(err, boom) {
		t.Fatalf("first acquire: %v, want the loader's error", err)
	}
	if _, release, err := r.Acquire("flaky"); err != nil {
		t.Fatalf("second acquire after a failed load: %v", err)
	} else {
		release()
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("loader ran %d times, want 2", got)
	}
}

// TestRegistrySingleLoad: concurrent acquirers of a cold dataset share
// one loader run — the others wait on the in-flight load instead of
// building duplicate copies.
func TestRegistrySingleLoad(t *testing.T) {
	var calls atomic.Int64
	gate := make(chan struct{})
	r := NewRegistry()
	r.RegisterLazy("slow", "", func() (*Dataset, error) {
		calls.Add(1)
		<-gate // hold every waiter on this one load
		return tinyDataset("slow", 8), nil
	})

	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, release, err := r.Acquire("slow")
			if err != nil {
				errs <- err
				return
			}
			release()
		}()
	}
	// Give the goroutines time to stack up behind the load, then open
	// the gate.
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent acquire: %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("loader ran %d times for %d concurrent acquirers, want 1", got, n)
	}
}

// TestRegistryConcurrentAcquireEvict hammers acquire/release against
// Evict and SetBudget under -race: the invariant is that a pinned
// dataset's storage is never freed — every acquirer can read its table
// through the full pin window — and that pins drain to zero.
func TestRegistryConcurrentAcquireEvict(t *testing.T) {
	names := []string{"a", "b", "c"}
	r := NewRegistry()
	for _, name := range names {
		var c atomic.Int64
		r.RegisterLazy(name, "", countingLoader(name, 16, &c))
	}
	r.SetBudget(2 * tinyDataset("a", 16).MemBytes())

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := names[g%len(names)]
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ds, release, err := r.Acquire(name)
				if err != nil {
					if errors.Is(err, ErrBudgetExceeded) {
						continue // two pinned + one loading can exceed 2×budget
					}
					t.Errorf("acquire %s: %v", name, err)
					return
				}
				// Read through the pin: a use-after-evict here is a
				// -race report or a nil dereference.
				ct := ds.Tables["t"]
				if ct == nil || ct.N != 16 || ct.Cols[0][ct.N-1] != int64(ct.N-1) {
					t.Errorf("acquire %s: dataset storage corrupted under concurrent eviction", name)
					release()
					return
				}
				release()
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r.Evict(names[i%len(names)])
			if i%7 == 0 {
				r.SetBudget(2 * tinyDataset("a", 16).MemBytes())
			}
		}
	}()
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()

	// All pins drained: every resident dataset is evictable now.
	for _, info := range r.Info() {
		if info.Pins != 0 {
			t.Errorf("dataset %s still holds %d pins after all goroutines released", info.Name, info.Pins)
		}
		if info.Resident && !r.Evict(info.Name) {
			t.Errorf("dataset %s resident but unevictable with zero pins", info.Name)
		}
	}
	if got := r.ResidentBytes(); got != 0 {
		t.Errorf("resident %d bytes after evicting everything, want 0", got)
	}
}

// TestRegistryReplaceRegistration: re-registering a name (lazy over
// eager and back) replaces the entry and releases the old residency.
func TestRegistryReplaceRegistration(t *testing.T) {
	r := NewRegistry()
	r.Register(tinyDataset("a", 16))
	before := r.ResidentBytes()
	if before == 0 {
		t.Fatal("eager registration holds no bytes")
	}
	var calls atomic.Int64
	r.RegisterLazy("a", "now lazy", countingLoader("a", 8, &calls))
	if got := r.ResidentBytes(); got != 0 {
		t.Errorf("resident %d bytes after replacing the eager entry, want 0", got)
	}
	ds, release, err := r.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if ds.Tables["t"].N != 8 {
		t.Errorf("acquired the stale dataset: %d rows, want 8", ds.Tables["t"].N)
	}
	if got := r.Names(); len(got) != 1 {
		t.Errorf("Names() = %v after replacement, want one entry", got)
	}
}

// TestRegistrySetBudgetEvicts: lowering the budget below the resident
// set evicts immediately rather than waiting for the next load.
func TestRegistrySetBudgetEvicts(t *testing.T) {
	var a, b atomic.Int64
	r := NewRegistry()
	r.RegisterLazy("a", "", countingLoader("a", 32, &a))
	r.RegisterLazy("b", "", countingLoader("b", 32, &b))
	for _, name := range []string{"a", "b"} {
		_, release, err := r.Acquire(name)
		if err != nil {
			t.Fatal(err)
		}
		release()
	}
	one := tinyDataset("a", 32).MemBytes()
	r.SetBudget(one)
	if got := r.ResidentBytes(); got > one {
		t.Errorf("resident %d bytes after lowering the budget to %d", got, one)
	}
	if r.Evictions() == 0 {
		t.Error("SetBudget below residency evicted nothing")
	}
}

// TestRegistryInfoRows: Info reports row counts for resident datasets
// so /stats can show them.
func TestRegistryInfoRows(t *testing.T) {
	r := NewRegistry()
	r.Register(tinyDataset("a", 5))
	info := r.Info()
	if len(info) != 1 {
		t.Fatalf("%d info entries, want 1", len(info))
	}
	if info[0].Rows != 5 || !info[0].Resident || info[0].Evictable {
		t.Errorf("info = %+v, want 5 resident unevictable rows", info[0])
	}
	if info[0].Bytes != tinyDataset("a", 5).MemBytes() {
		t.Errorf("info bytes = %d, want MemBytes", info[0].Bytes)
	}
}
