package dfsm

import (
	"strings"
	"testing"

	"orderopt/internal/nfsm"
	"orderopt/internal/order"
)

type fixture struct {
	reg *order.Registry
	in  *order.Interner
}

func newFixture() *fixture {
	return &fixture{reg: order.NewRegistry(), in: order.NewInterner()}
}

func (f *fixture) ord(names ...string) order.ID {
	return f.in.Intern(f.reg.Attrs(names...))
}

func (f *fixture) build(t *testing.T, input nfsm.Input, opt nfsm.Options) *Machine {
	t.Helper()
	n, err := nfsm.Build(input, opt)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Convert(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func (f *fixture) setStrings(m *Machine, s StateID) map[string]bool {
	out := map[string]bool{}
	for _, ns := range m.Sets[s] {
		if ns == nfsm.StartState {
			out["q0"] = true
			continue
		}
		out[f.in.Format(f.reg, m.N.States[ns].Ord)] = true
	}
	return out
}

func (f *fixture) runningExample() nfsm.Input {
	b := f.reg.Attr("b")
	c := f.reg.Attr("c")
	d := f.reg.Attr("d")
	return nfsm.Input{
		Reg:      f.reg,
		In:       f.in,
		Produced: []order.ID{f.ord("b"), f.ord("a", "b")},
		Tested:   []order.ID{f.ord("a", "b", "c")},
		FDSets: []order.FDSet{
			order.NewFDSet(order.NewFD(c, b)),
			order.NewFDSet(order.NewFD(d, b)),
		},
	}
}

// Figure 8: the DFSM of the running example has the four states
// * , 1:{(b)}, 2:{(a),(a,b)}, 3:{(a),(a,b),(a,b,c)}.
func TestFigure8(t *testing.T) {
	f := newFixture()
	m := f.build(t, f.runningExample(), nfsm.AllPruning())
	if m.NumStates() != 4 {
		t.Fatalf("DFSM states = %d, want 4\n%s", m.NumStates(), m.Dump())
	}
	wantSets := []map[string]bool{
		{"q0": true},
		{"(b)": true},
		{"(a)": true, "(a, b)": true},
		{"(a)": true, "(a, b)": true, "(a, b, c)": true},
	}
	for i, want := range wantSets {
		got := f.setStrings(m, StateID(i))
		if len(got) != len(want) {
			t.Errorf("state %d = %v, want %v", i, got, want)
			continue
		}
		for k := range want {
			if !got[k] {
				t.Errorf("state %d missing %s", i, k)
			}
		}
	}
}

// Figure 9: the precomputed contains matrix.
func TestFigure9(t *testing.T) {
	f := newFixture()
	m := f.build(t, f.runningExample(), nfsm.AllPruning())
	type row struct {
		state StateID
		avail map[string]bool
	}
	rows := []row{
		{1, map[string]bool{"(a)": false, "(a, b)": false, "(a, b, c)": false, "(b)": true}},
		{2, map[string]bool{"(a)": true, "(a, b)": true, "(a, b, c)": false, "(b)": false}},
		{3, map[string]bool{"(a)": true, "(a, b)": true, "(a, b, c)": true, "(b)": false}},
	}
	ords := map[string]order.ID{
		"(a)":       f.ord("a"),
		"(b)":       f.ord("b"),
		"(a, b)":    f.ord("a", "b"),
		"(a, b, c)": f.ord("a", "b", "c"),
	}
	for _, r := range rows {
		for name, want := range r.avail {
			if got := m.Contains(r.state, ords[name]); got != want {
				t.Errorf("Contains(%d, %s) = %v, want %v", r.state, name, got, want)
			}
		}
	}
}

// Figure 10: the precomputed transition table. Rows *,1,2,3 and columns
// {b→c}, (b), (a,b) — note the machine orders produced symbols (b) first
// because it is shorter.
func TestFigure10(t *testing.T) {
	f := newFixture()
	m := f.build(t, f.runningExample(), nfsm.AllPruning())
	symFD := 0
	symB := m.N.ProducedSymbol(f.ord("b"))
	symAB := m.N.ProducedSymbol(f.ord("a", "b"))
	if symB < 0 || symAB < 0 {
		t.Fatal("missing produced symbols")
	}
	want := map[StateID][3]StateID{
		Start: {Start, 1, 2}, // {b→c}→*, (b)→1, (a,b)→2
		1:     {1, 1, 1},
		2:     {3, 2, 2},
		3:     {3, 3, 3},
	}
	for s, w := range want {
		if got := m.Step(s, symFD); got != w[0] {
			t.Errorf("Step(%d, {b→c}) = %d, want %d", s, got, w[0])
		}
		if got := m.Step(s, symB); got != w[1] {
			t.Errorf("Step(%d, (b)) = %d, want %d", s, got, w[1])
		}
		if got := m.Step(s, symAB); got != w[2] {
			t.Errorf("Step(%d, (a,b)) = %d, want %d", s, got, w[2])
		}
	}
}

// §5.6's walkthrough: sort by (a,b) → state 2 (satisfies (a) and (a,b));
// apply the operator inducing b→c → state 3 (satisfies (a,b,c) too).
func TestSection56Walkthrough(t *testing.T) {
	f := newFixture()
	m := f.build(t, f.runningExample(), nfsm.AllPruning())
	s := m.ProduceState(f.ord("a", "b"))
	if !m.Contains(s, f.ord("a")) || !m.Contains(s, f.ord("a", "b")) {
		t.Fatal("state after producing (a,b) must contain (a) and (a,b)")
	}
	if m.Contains(s, f.ord("a", "b", "c")) {
		t.Fatal("(a,b,c) must not be available before b→c")
	}
	s = m.Step(s, 0) // FD symbol {b→c}
	if !m.Contains(s, f.ord("a", "b", "c")) {
		t.Fatal("(a,b,c) must be available after b→c")
	}
}

// Figures 1 and 2: the intro example (a,b,c) with {b→d}, no pruning.
func TestFigure1And2(t *testing.T) {
	f := newFixture()
	b := f.reg.Attr("b")
	d := f.reg.Attr("d")
	input := nfsm.Input{
		Reg:      f.reg,
		In:       f.in,
		Produced: []order.ID{f.ord("a", "b", "c")},
		FDSets:   []order.FDSet{order.NewFDSet(order.NewFD(d, b))},
	}
	m := f.build(t, input, nfsm.NoPruning())
	// NFSM: q0 + 6 ordering nodes (a),(a,b),(a,b,c),(a,b,d),(a,b,c,d),(a,b,d,c).
	if got := m.N.NumStates(); got != 7 {
		t.Fatalf("NFSM states = %d, want 7\n%s", got, m.N.Dump())
	}
	// DFSM: *, {a,ab,abc}, {a,ab,abc,abd,abcd,abdc} (Figure 2).
	if m.NumStates() != 3 {
		t.Fatalf("DFSM states = %d, want 3\n%s", m.NumStates(), m.Dump())
	}
	s1 := m.ProduceState(f.ord("a", "b", "c"))
	got1 := f.setStrings(m, s1)
	if len(got1) != 3 || !got1["(a)"] || !got1["(a, b)"] || !got1["(a, b, c)"] {
		t.Errorf("state after producing (a,b,c) = %v", got1)
	}
	s2 := m.Step(s1, 0)
	got2 := f.setStrings(m, s2)
	if len(got2) != 6 || !got2["(a, b, d, c)"] || !got2["(a, b, c, d)"] || !got2["(a, b, d)"] {
		t.Errorf("state after {b→d} = %v", got2)
	}
	if m.Step(s2, 0) != s2 {
		t.Error("{b→d} must be a fixpoint on the expanded state")
	}
}

// Figure 12: the DFSM of the §6.1 query (built without pruning so the
// NFSM matches Figure 11 exactly).
func TestFigure12(t *testing.T) {
	f := newFixture()
	id := f.reg.Attr("id")
	jobid := f.reg.Attr("jobid")
	input := nfsm.Input{
		Reg:      f.reg,
		In:       f.in,
		Produced: []order.ID{f.ord("id"), f.ord("jobid"), f.ord("id", "name")},
		Tested:   []order.ID{f.ord("salary")},
		FDSets:   []order.FDSet{order.NewFDSet(order.NewEquation(id, jobid))},
	}
	m := f.build(t, input, nfsm.NoPruning())
	// States: *, {(id)}, {(jobid)}, {(id),(id,name)}, the 4-ordering
	// equation state and the 10-ordering equation state.
	if m.NumStates() != 6 {
		t.Fatalf("DFSM states = %d, want 6\n%s", m.NumStates(), m.Dump())
	}
	sID := m.ProduceState(f.ord("id"))
	sJob := m.ProduceState(f.ord("jobid"))
	sIDName := m.ProduceState(f.ord("id", "name"))

	eq := 0 // only FD symbol
	small := m.Step(sID, eq)
	if m.Step(sJob, eq) != small {
		t.Error("(id) and (jobid) must reach the same equation state")
	}
	got := f.setStrings(m, small)
	for _, w := range []string{"(id)", "(jobid)", "(jobid, id)", "(id, jobid)"} {
		if !got[w] {
			t.Errorf("small equation state missing %s: %v", w, got)
		}
	}
	if len(got) != 4 {
		t.Errorf("small equation state = %v, want 4 members", got)
	}

	big := m.Step(sIDName, eq)
	gb := f.setStrings(m, big)
	if len(gb) != 10 {
		t.Errorf("big equation state has %d members, want 10: %v", len(gb), gb)
	}
	if gb["(salary)"] {
		t.Error("(salary) must not be reachable (Figure 12: the node does not appear)")
	}
	// The paper's point: after producing (id,name) and applying
	// id = jobid, the stream satisfies the ORDER BY (jobid, name).
	if !m.Contains(big, f.ord("jobid", "name")) {
		// (jobid,name) is an artificial node, not in the contains matrix
		// by default — but (id,name) and (jobid) are.
		t.Log("contains matrix only answers interesting orders; checking those instead")
	}
	if !m.Contains(big, f.ord("id", "name")) || !m.Contains(big, f.ord("jobid")) {
		t.Error("big equation state must contain (id,name) and (jobid)")
	}
}

func TestSubsetOfAndRow(t *testing.T) {
	f := newFixture()
	m := f.build(t, f.runningExample(), nfsm.AllPruning())
	s2 := m.ProduceState(f.ord("a", "b"))
	s3 := m.Step(s2, 0)
	if !m.SubsetOf(s2, s3) {
		t.Error("state 2 ⊆ state 3 expected")
	}
	if m.SubsetOf(s3, s2) {
		t.Error("state 3 ⊄ state 2 expected")
	}
	s1 := m.ProduceState(f.ord("b"))
	if m.SubsetOf(s1, s2) || m.SubsetOf(s2, s1) {
		t.Error("states 1 and 2 must be incomparable")
	}
	if m.Row(s3).Len() != 3 {
		t.Errorf("Row(3) has %d bits, want 3", m.Row(s3).Len())
	}
}

func TestColumnLookups(t *testing.T) {
	f := newFixture()
	m := f.build(t, f.runningExample(), nfsm.AllPruning())
	col := m.Column(f.ord("a", "b"))
	if col < 0 {
		t.Fatal("Column((a,b)) missing")
	}
	s2 := m.ProduceState(f.ord("a", "b"))
	if !m.ContainsColumn(s2, col) {
		t.Error("ContainsColumn broken")
	}
	if m.Column(f.ord("z", "q")) != -1 {
		t.Error("unknown ordering must map to column -1")
	}
	if m.Contains(s2, f.ord("z", "q")) {
		t.Error("unknown ordering can never be contained")
	}
}

func TestProduceStateUnknown(t *testing.T) {
	f := newFixture()
	m := f.build(t, f.runningExample(), nfsm.AllPruning())
	if got := m.ProduceState(f.ord("q")); got != Start {
		t.Errorf("ProduceState(unknown) = %d, want Start", got)
	}
	// Tested-only orders cannot be produced either.
	if got := m.ProduceState(f.ord("a", "b", "c")); got != Start {
		t.Errorf("ProduceState(tested-only) = %d, want Start", got)
	}
}

func TestPrecomputedBytesPositive(t *testing.T) {
	f := newFixture()
	m := f.build(t, f.runningExample(), nfsm.AllPruning())
	if m.PrecomputedBytes() <= 0 {
		t.Error("PrecomputedBytes must be positive")
	}
	// 4 states × 3 symbols × 4 bytes = 48 bytes of transitions plus 4
	// contains rows of one word each.
	if got := m.PrecomputedBytes(); got != 48+4*8 {
		t.Errorf("PrecomputedBytes = %d, want 80", got)
	}
}

func TestMaxStatesLimit(t *testing.T) {
	f := newFixture()
	n, err := nfsm.Build(f.runningExample(), nfsm.AllPruning())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Convert(n, Options{MaxStates: 2}); err == nil {
		t.Error("Convert with MaxStates=2 should fail for a 4-state DFSM")
	}
}

func TestDumpMentionsEverything(t *testing.T) {
	f := newFixture()
	m := f.build(t, f.runningExample(), nfsm.AllPruning())
	d := m.Dump()
	for _, want := range []string{"DFSM: 4 states", "contains matrix", "transition table", "{b → c}"} {
		if !strings.Contains(d, want) {
			t.Errorf("Dump missing %q", want)
		}
	}
}

// Pruning must never change observable behaviour: for the running
// example, contains answers on interesting orders must be identical with
// and without pruning, for every reachable state along every FD path.
func TestPruningPreservesSemantics(t *testing.T) {
	f := newFixture()
	pruned := f.build(t, f.runningExample(), nfsm.AllPruning())

	f2 := newFixture()
	unpruned := f2.build(t, f2.runningExample(), nfsm.NoPruning())

	interesting := [][]string{{"b"}, {"a", "b"}, {"a", "b", "c"}, {"a"}}
	produced := [][]string{{"b"}, {"a", "b"}}

	for _, p := range produced {
		sp := pruned.ProduceState(f.ord(p...))
		su := unpruned.ProduceState(f2.ord(p...))
		// Apply every FD-symbol sequence up to length 2 in the unpruned
		// machine and the corresponding pruned symbol.
		type pair struct {
			sp StateID
			su StateID
		}
		frontier := []pair{{sp, su}}
		for depth := 0; depth < 2; depth++ {
			var next []pair
			for _, pr := range frontier {
				for origSym := range f2.runningExample().FDSets {
					puSym := unpruned.N.FDSymbol[origSym]
					ppSym := pruned.N.FDSymbol[origSym]
					nu := pr.su
					if puSym >= 0 {
						nu = unpruned.Step(pr.su, puSym)
					}
					np := pr.sp
					if ppSym >= 0 {
						np = pruned.Step(pr.sp, ppSym)
					}
					next = append(next, pair{np, nu})
				}
			}
			frontier = next
			for _, pr := range frontier {
				for _, io := range interesting {
					got := pruned.Contains(pr.sp, f.ord(io...))
					want := unpruned.Contains(pr.su, f2.ord(io...))
					if got != want {
						t.Fatalf("pruning changed Contains(%v) after path: got %v want %v", io, got, want)
					}
				}
			}
		}
	}
}
