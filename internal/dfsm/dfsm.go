// Package dfsm converts the NFSM of paper §5.3 into a deterministic FSM
// using the classic powerset construction (§5.4, proved correct for FSMs
// in the paper's appendix) and precomputes the two matrices of §5.5:
//
//   - the contains matrix: DFSM state × interesting order → bit, backing
//     the O(1) contains(ordering) test, and
//   - the transition table: DFSM state × symbol → DFSM state, backing the
//     O(1) inferNewLogicalOrderings(fdSet) operation and the O(1) ADT
//     constructor (via the artificial start edges).
//
// Transitions are total: a symbol with no outgoing NFSM edges from any
// member state is the identity ("no new orderings derivable"), matching
// the paper's Figure 10 where, e.g., produced-order columns of non-start
// rows map to the row itself.
package dfsm

import (
	"fmt"
	"sort"
	"strings"

	"orderopt/internal/bitset"
	"orderopt/internal/nfsm"
	"orderopt/internal/order"
)

// StateID identifies a DFSM state. Start (0) is the paper's "*" node.
type StateID int32

// Start is the DFSM start state (the ε-closure of q0, written "*").
const Start StateID = 0

// Machine is the deterministic FSM plus the §5.5 precomputed tables.
type Machine struct {
	N *nfsm.Machine

	// Sets holds, per DFSM state, the sorted NFSM member states. Kept for
	// inspection, golden tests and the CLI; plan generation never touches
	// it.
	Sets [][]nfsm.StateID

	// Trans is the total transition table: Trans[state][symbol]. Symbols
	// are the NFSM's: FD sets first, then produced orders.
	Trans [][]StateID

	// Columns lists the interesting orders answerable by the contains
	// matrix (interesting NFSM states, i.e. O_I and their prefixes).
	Columns []order.ID
	colOf   map[order.ID]int

	// GroupColumns lists the interesting groupings; their bits sit after
	// the ordering columns in the contains rows.
	GroupColumns []order.ID
	colOfGroup   map[order.ID]int

	// contains[state] has bit i set iff Columns[i] is available in that
	// state.
	contains []*bitset.Set

	// subsume[a] has bit b set iff state b dominates state a: a's
	// available orderings are a subset of b's now and after every
	// possible symbol sequence (the greatest simulation preorder).
	// Plan-pruning uses this: it is the future-proof version of the
	// row-subset test.
	subsume []*bitset.Set
}

// Options configures the conversion.
type Options struct {
	// MaxStates aborts the powerset construction when exceeded (the
	// conversion can in theory be exponential, §8). 0 means no limit.
	MaxStates int
	// MaxSimulationStates bounds the O(states²) subsumption precompute:
	// machines larger than this fall back to identity-only dominance
	// (still sound, just less pruning). 0 means no limit.
	MaxSimulationStates int
}

// Convert runs the powerset construction on n.
func Convert(n *nfsm.Machine, opt Options) (*Machine, error) {
	m := &Machine{N: n, colOf: make(map[order.ID]int), colOfGroup: make(map[order.ID]int)}
	for _, st := range n.InterestingStates() {
		if st.Ord == order.EmptyID {
			// The empty ordering is trivially satisfied everywhere and
			// needs no matrix column (Contains special-cases it).
			continue
		}
		if st.Grouping {
			m.colOfGroup[st.Ord] = len(m.GroupColumns)
			m.GroupColumns = append(m.GroupColumns, st.Ord)
			continue
		}
		m.colOf[st.Ord] = len(m.Columns)
		m.Columns = append(m.Columns, st.Ord)
	}

	nSym := n.NumSymbols()
	nFD := n.NumFDSymbols()

	key := func(set []nfsm.StateID) string {
		var b strings.Builder
		for _, s := range set {
			fmt.Fprintf(&b, "%d,", s)
		}
		return b.String()
	}
	index := make(map[string]StateID)
	add := func(set []nfsm.StateID) StateID {
		k := key(set)
		if id, ok := index[k]; ok {
			return id
		}
		id := StateID(len(m.Sets))
		index[k] = id
		m.Sets = append(m.Sets, set)
		m.Trans = append(m.Trans, make([]StateID, nSym))
		return id
	}

	start := add([]nfsm.StateID{nfsm.StartState})
	for cur := start; int(cur) < len(m.Sets); cur++ {
		if opt.MaxStates > 0 && len(m.Sets) > opt.MaxStates {
			return nil, fmt.Errorf("dfsm: state limit %d exceeded", opt.MaxStates)
		}
		set := m.Sets[cur]
		for sym := 0; sym < nSym; sym++ {
			var next []nfsm.StateID
			if sym < nFD {
				// FD-set symbol: every member keeps itself (implicit
				// self-loop — previously derivable orderings stay
				// derivable) and contributes its edge targets.
				next = append(next, set...)
				for _, s := range set {
					if s == nfsm.StartState {
						continue
					}
					next = append(next, n.FDTargets(s, sym)...)
				}
			} else {
				// Produced symbol (ordering or grouping): only
				// meaningful from the start state (the ADT
				// constructor); elsewhere it is the identity, cf.
				// Figure 10.
				fromStart := false
				for _, s := range set {
					if s == nfsm.StartState {
						fromStart = true
						break
					}
				}
				if fromStart {
					next = []nfsm.StateID{n.StartTargetForSymbol(sym)}
				} else {
					next = append(next, set...)
				}
			}
			closed := epsClose(n, next)
			m.Trans[cur][sym] = add(closed)
		}
	}

	m.precomputeContains()
	m.precomputeSubsumption(opt.MaxSimulationStates)
	return m, nil
}

// epsClose expands the set with every state reachable via ε edges
// (prefix and grouping successors) and returns it sorted, deduplicated.
func epsClose(n *nfsm.Machine, set []nfsm.StateID) []nfsm.StateID {
	seen := make(map[nfsm.StateID]bool, len(set))
	var out []nfsm.StateID
	var visit func(s nfsm.StateID)
	visit = func(s nfsm.StateID) {
		if s == nfsm.NoState || seen[s] {
			return
		}
		seen[s] = true
		out = append(out, s)
		visit(n.Eps(s))
		visit(n.EpsGroup(s))
	}
	for _, s := range set {
		visit(s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (m *Machine) precomputeContains() {
	m.contains = make([]*bitset.Set, len(m.Sets))
	for i, set := range m.Sets {
		row := bitset.New(len(m.Columns) + len(m.GroupColumns))
		for _, s := range set {
			st := m.N.States[s]
			if st.Kind != nfsm.KindInteresting {
				continue
			}
			if st.Grouping {
				if col, ok := m.colOfGroup[st.Ord]; ok {
					row.Add(len(m.Columns) + col)
				}
				continue
			}
			if col, ok := m.colOf[st.Ord]; ok {
				row.Add(col)
			}
		}
		m.contains[i] = row
	}
}

// precomputeSubsumption computes the greatest simulation preorder:
// R(a, b) starts as "row(a) ⊆ row(b)" and pairs are removed until R is
// closed under all transitions. The result makes SubsetOf sound for plan
// pruning: if a ⊑ b, then after any sequence of operators the orderings
// available from a remain a subset of those available from b.
func (m *Machine) precomputeSubsumption(limit int) {
	n := len(m.Sets)
	m.subsume = make([]*bitset.Set, n)
	if limit > 0 && n > limit {
		// Degenerate machine: the quadratic simulation would dominate
		// preparation time. Identity dominance is still sound.
		for a := 0; a < n; a++ {
			m.subsume[a] = bitset.FromInts(a)
		}
		return
	}
	for a := 0; a < n; a++ {
		m.subsume[a] = bitset.New(n)
		for b := 0; b < n; b++ {
			if m.contains[a].SubsetOf(m.contains[b]) {
				m.subsume[a].Add(b)
			}
		}
	}
	// Only FD symbols are quantified: produced-order symbols are
	// constructor entry points from the start state, never transitions
	// applied to an existing plan's state (sorts re-enter through the
	// start state and depend only on the plan's FD mask, which is a
	// function of the relation subset).
	nSym := m.N.NumFDSymbols()
	for changed := true; changed; {
		changed = false
		for a := 0; a < n; a++ {
			row := m.subsume[a]
			row.ForEach(func(b int) bool {
				if a == b {
					return true
				}
				for sym := 0; sym < nSym; sym++ {
					na, nb := m.Trans[a][sym], m.Trans[b][sym]
					if na == StateID(a) && nb == StateID(b) {
						continue
					}
					if !m.subsume[na].Contains(int(nb)) {
						row.Remove(b)
						changed = true
						return true
					}
				}
				return true
			})
		}
	}
}

// NumStates returns the number of DFSM states including the start state.
func (m *Machine) NumStates() int { return len(m.Sets) }

// Contains reports whether ordering o is available in state s: the O(1)
// membership test of the LogicalOrderings ADT. Orderings outside the
// contains matrix are never available; the empty ordering always is.
func (m *Machine) Contains(s StateID, o order.ID) bool {
	if o == order.EmptyID {
		return true
	}
	col, ok := m.colOf[o]
	return ok && m.contains[s].Contains(col)
}

// Column returns the contains-matrix column of o, or -1. Plan generators
// can cache the column for repeated tests.
func (m *Machine) Column(o order.ID) int {
	if c, ok := m.colOf[o]; ok {
		return c
	}
	return -1
}

// ContainsColumn is Contains with a pre-resolved column index.
func (m *Machine) ContainsColumn(s StateID, col int) bool {
	return m.contains[s].Contains(col)
}

// Row returns the contains-matrix row of state s (do not modify).
func (m *Machine) Row(s StateID) *bitset.Set { return m.contains[s] }

// ContainsGrouping reports whether the grouping g (canonical ID from
// order.GroupingOf) is available in state s: the stream is clustered by
// those attributes. O(1) bit lookup.
func (m *Machine) ContainsGrouping(s StateID, g order.ID) bool {
	col, ok := m.colOfGroup[g]
	return ok && m.contains[s].Contains(len(m.Columns)+col)
}

// ProduceGroupingState returns the state after producing grouping g
// from scratch (e.g. the output of a hash group). Returns Start when g
// is not a produced grouping.
func (m *Machine) ProduceGroupingState(g order.ID) StateID {
	if sym := m.N.ProducedGroupingSymbol(g); sym >= 0 {
		return m.Trans[Start][sym]
	}
	return Start
}

// Step follows the transition for symbol sym: the O(1) infer operation.
func (m *Machine) Step(s StateID, sym int) StateID { return m.Trans[s][sym] }

// ProduceState returns the state after producing ordering o from scratch
// (the ADT constructor): one lookup from the start state. Returns Start
// itself when o is not a produced interesting order.
func (m *Machine) ProduceState(o order.ID) StateID {
	if sym := m.N.ProducedSymbol(o); sym >= 0 {
		return m.Trans[Start][sym]
	}
	return Start
}

// SubsetOf reports whether the orderings available in state a are a
// subset of those available in b — now and after every possible operator
// sequence (simulation preorder). This is the dominance test plan
// generators use to prune comparable plans; it is future-proof, unlike
// the plain row comparison (see RowSubsetOf).
func (m *Machine) SubsetOf(a, b StateID) bool {
	return m.subsume[a].Contains(int(b))
}

// RowSubsetOf compares only the current contains-matrix rows. It is NOT
// sound for plan pruning (two states with equal rows can diverge under
// future FDs); exposed for inspection and ablation experiments.
func (m *Machine) RowSubsetOf(a, b StateID) bool {
	return m.contains[a].SubsetOf(m.contains[b])
}

// PrecomputedBytes returns the memory consumed by the §5.5 tables: 4
// bytes per transition cell plus the contains bit rows (8 bytes per
// 64-column word per state). This is the "precomputed data" figure of
// the §6.2 experiment.
func (m *Machine) PrecomputedBytes() int {
	bytes := 0
	for _, row := range m.Trans {
		bytes += 4 * len(row)
	}
	for _, row := range m.contains {
		bytes += row.Bytes()
	}
	return bytes
}

// Dump renders the machine like the paper's Figures 8–10: the state
// sets, the contains matrix and the transition table.
func (m *Machine) Dump() string {
	n := m.N
	var b strings.Builder
	fmt.Fprintf(&b, "DFSM: %d states, %d symbols\n", len(m.Sets), n.NumSymbols())
	for i, set := range m.Sets {
		if StateID(i) == Start {
			b.WriteString("  *: {q0}\n")
			continue
		}
		var parts []string
		for _, s := range set {
			parts = append(parts, n.In.Format(n.Reg, n.States[s].Ord))
		}
		fmt.Fprintf(&b, "  %d: {%s}\n", i, strings.Join(parts, ", "))
	}
	b.WriteString("contains matrix:\n")
	for i := range m.Sets {
		if StateID(i) == Start {
			continue
		}
		var parts []string
		for c, o := range m.Columns {
			v := "0"
			if m.contains[i].Contains(c) {
				v = "1"
			}
			parts = append(parts, fmt.Sprintf("%s=%s", n.In.Format(n.Reg, o), v))
		}
		fmt.Fprintf(&b, "  %d: %s\n", i, strings.Join(parts, " "))
	}
	b.WriteString("transition table:\n")
	symName := func(sym int) string {
		if sym < n.NumFDSymbols() {
			return n.FDSets[sym].Format(n.Reg)
		}
		return n.In.Format(n.Reg, n.Produced[sym-n.NumFDSymbols()])
	}
	for i := range m.Sets {
		name := fmt.Sprintf("%d", i)
		if StateID(i) == Start {
			name = "*"
		}
		var parts []string
		for sym := 0; sym < n.NumSymbols(); sym++ {
			t := m.Trans[i][sym]
			tn := fmt.Sprintf("%d", t)
			if t == Start {
				tn = "*"
			}
			parts = append(parts, fmt.Sprintf("%s→%s", symName(sym), tn))
		}
		fmt.Fprintf(&b, "  %s: %s\n", name, strings.Join(parts, "  "))
	}
	return b.String()
}
