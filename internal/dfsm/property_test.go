package dfsm

import (
	"math/rand"
	"testing"

	"orderopt/internal/nfsm"
	"orderopt/internal/order"
)

// randomMachine builds a DFSM from random interesting orders and FD
// sets (shared helper for the property tests below).
func randomMachine(t *testing.T, rng *rand.Rand) (*Machine, *fixture) {
	t.Helper()
	f := newFixture()
	names := []string{"a", "b", "c", "d"}
	attrs := make([]order.Attr, len(names))
	for i, n := range names {
		attrs[i] = f.reg.Attr(n)
	}
	var produced, tested []order.ID
	for i := 0; i < 2+rng.Intn(3); i++ {
		perm := rng.Perm(len(attrs))
		k := 1 + rng.Intn(2)
		seq := make([]order.Attr, 0, k)
		for _, p := range perm[:k] {
			seq = append(seq, attrs[p])
		}
		o := f.in.Intern(seq)
		if rng.Intn(4) == 0 {
			tested = append(tested, o)
		} else {
			produced = append(produced, o)
		}
	}
	if len(produced) == 0 {
		produced = append(produced, f.ord("a"))
	}
	var sets []order.FDSet
	for i := 0; i < 1+rng.Intn(3); i++ {
		var fds []order.FD
		for j := 0; j < 1+rng.Intn(2); j++ {
			x, y := attrs[rng.Intn(len(attrs))], attrs[rng.Intn(len(attrs))]
			switch rng.Intn(3) {
			case 0:
				if x != y {
					fds = append(fds, order.NewFD(y, x))
				}
			case 1:
				if x != y {
					fds = append(fds, order.NewEquation(x, y))
				}
			default:
				fds = append(fds, order.NewConstant(x))
			}
		}
		if len(fds) > 0 {
			sets = append(sets, order.NewFDSet(fds...))
		}
	}
	n, err := nfsm.Build(nfsm.Input{
		Reg: f.reg, In: f.in,
		Produced: produced, Tested: tested, FDSets: sets,
		IncludeEmpty: rng.Intn(2) == 0,
	}, nfsm.AllPruning())
	if err != nil {
		t.Fatal(err)
	}
	m, err := Convert(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m, f
}

// The subsumption relation must be a preorder (reflexive, transitive)
// and must refine the row comparison (a ⊑ b ⇒ row(a) ⊆ row(b)).
func TestSubsumptionIsPreorder(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		m, _ := randomMachine(t, rng)
		n := m.NumStates()
		for a := 0; a < n; a++ {
			if !m.SubsetOf(StateID(a), StateID(a)) {
				t.Fatalf("trial %d: subsumption not reflexive at %d", trial, a)
			}
			for b := 0; b < n; b++ {
				if m.SubsetOf(StateID(a), StateID(b)) && !m.RowSubsetOf(StateID(a), StateID(b)) {
					t.Fatalf("trial %d: %d ⊑ %d but rows are not subset", trial, a, b)
				}
				for c := 0; c < n; c++ {
					if m.SubsetOf(StateID(a), StateID(b)) && m.SubsetOf(StateID(b), StateID(c)) &&
						!m.SubsetOf(StateID(a), StateID(c)) {
						t.Fatalf("trial %d: subsumption not transitive: %d ⊑ %d ⊑ %d", trial, a, b, c)
					}
				}
			}
		}
	}
}

// Subsumption must be closed under transitions: if a ⊑ b then after any
// FD symbol, step(a) ⊑ step(b) — the property that makes dominance
// pruning sound.
func TestSubsumptionClosedUnderTransitions(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 60; trial++ {
		m, _ := randomMachine(t, rng)
		n := m.NumStates()
		nFD := m.N.NumFDSymbols()
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if !m.SubsetOf(StateID(a), StateID(b)) {
					continue
				}
				for sym := 0; sym < nFD; sym++ {
					na, nb := m.Step(StateID(a), sym), m.Step(StateID(b), sym)
					if !m.SubsetOf(na, nb) {
						t.Fatalf("trial %d: %d ⊑ %d broken by symbol %d: %d ⋢ %d",
							trial, a, b, sym, na, nb)
					}
				}
			}
		}
	}
}

// Transitions must be monotone: applying an FD set never loses an
// available interesting order (Ω(O, F) ⊇ O).
func TestTransitionsMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 80; trial++ {
		m, _ := randomMachine(t, rng)
		n := m.NumStates()
		nFD := m.N.NumFDSymbols()
		for s := 0; s < n; s++ {
			for sym := 0; sym < nFD; sym++ {
				next := m.Step(StateID(s), sym)
				if !m.Row(StateID(s)).SubsetOf(m.Row(next)) {
					t.Fatalf("trial %d: transition lost orderings: state %d sym %d", trial, s, sym)
				}
				// Applying the same FD set twice is idempotent.
				if m.Step(next, sym) != next {
					t.Fatalf("trial %d: transition not idempotent: state %d sym %d", trial, s, sym)
				}
			}
		}
	}
}
