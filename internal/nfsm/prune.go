package nfsm

import (
	"strconv"
	"strings"

	"orderopt/internal/order"
)

// reduceArtificial applies the two §5.7 node heuristics to fixpoint:
//
//  1. merge artificial nodes that behave exactly the same (identical ε
//     successor and identical FD-edge targets per symbol), and
//  2. prune artificial nodes that can reach important nodes only through
//     ε edges (their own FD edges derive nothing beyond what their
//     prefixes derive); incoming edges are redirected to the ε successor.
//
// Interesting nodes and q0 are never touched, so plan generation is
// unaffected (§5.7: artificial nodes are invisible outside the NFSM).
func reduceArtificial(m *Machine, opt Options) {
	r := &reducer{m: m, redirect: make([]StateID, len(m.States))}
	for i := range r.redirect {
		r.redirect[i] = StateID(i)
	}
	for {
		changed := false
		if opt.MergeArtificial && r.mergeOnce() {
			changed = true
		}
		if opt.PruneArtificial && r.pruneOnce() {
			changed = true
		}
		if !changed {
			break
		}
	}
	r.compact()
}

type reducer struct {
	m        *Machine
	redirect []StateID // per state: itself (alive), another state, or NoState
}

func (r *reducer) resolve(s StateID) StateID {
	for s != NoState && r.redirect[s] != s {
		s = r.redirect[s]
	}
	return s
}

func (r *reducer) alive(s StateID) bool { return r.redirect[s] == s }

// normalize rewrites all edges of alive states through the redirect map,
// dropping vanished targets, self-targets and duplicates.
func (r *reducer) normalize() {
	m := r.m
	nFD := len(m.FDSets)
	for _, st := range m.States {
		if !r.alive(st.ID) {
			continue
		}
		if e := m.eps[st.ID]; e != NoState {
			m.eps[st.ID] = r.resolve(e)
		}
		if e := m.epsGroup[st.ID]; e != NoState {
			m.epsGroup[st.ID] = r.resolve(e)
		}
		for sym := 0; sym < nFD; sym++ {
			idx := int(st.ID)*nFD + sym
			targets := m.out[idx]
			kept := targets[:0]
			seen := map[StateID]bool{st.ID: true}
			for _, t := range targets {
				t = r.resolve(t)
				if t == NoState || seen[t] {
					continue
				}
				seen[t] = true
				kept = append(kept, t)
			}
			sortStates(kept)
			m.out[idx] = kept
		}
	}
}

// mergeOnce merges artificial states that behave exactly the same using
// partition refinement (bisimulation minimization): all artificial
// states start in one block, every other state is a singleton, and
// blocks are split by their (ε-block, per-symbol target-block set)
// signature until stable. Artificial states sharing a final block are
// indistinguishable — including mutually-referencing twins such as
// (a,x)/(a,y) under {a→x, a→y} — and are merged.
func (r *reducer) mergeOnce() bool {
	r.normalize()
	m := r.m
	nFD := len(m.FDSets)

	block := make([]int, len(m.States))
	nBlocks := 0
	artBlock, artGroupBlock := -1, -1
	for _, st := range m.States {
		if !r.alive(st.ID) {
			block[st.ID] = -1
			continue
		}
		switch {
		case st.Kind == KindArtificial && st.Grouping:
			if artGroupBlock < 0 {
				artGroupBlock = nBlocks
				nBlocks++
			}
			block[st.ID] = artGroupBlock
		case st.Kind == KindArtificial:
			if artBlock < 0 {
				artBlock = nBlocks
				nBlocks++
			}
			block[st.ID] = artBlock
		default:
			block[st.ID] = nBlocks
			nBlocks++
		}
	}

	sig := func(s StateID) string {
		var b strings.Builder
		if e := m.eps[s]; e == NoState {
			b.WriteString("-")
		} else {
			b.WriteString(strconv.Itoa(block[e]))
		}
		b.WriteByte('/')
		if e := m.epsGroup[s]; e == NoState {
			b.WriteString("-")
		} else {
			b.WriteString(strconv.Itoa(block[e]))
		}
		for sym := 0; sym < nFD; sym++ {
			b.WriteByte('|')
			seen := map[int]bool{}
			var blocks []int
			for _, t := range m.out[int(s)*nFD+sym] {
				if bt := block[t]; !seen[bt] {
					seen[bt] = true
					blocks = append(blocks, bt)
				}
			}
			sortInts(blocks)
			for _, bt := range blocks {
				b.WriteString(strconv.Itoa(bt))
				b.WriteByte(',')
			}
		}
		return b.String()
	}

	for {
		next := make(map[string]int)
		newBlock := make([]int, len(block))
		n := 0
		for _, st := range m.States {
			if !r.alive(st.ID) {
				newBlock[st.ID] = -1
				continue
			}
			key := strconv.Itoa(block[st.ID]) + "#" + sig(st.ID)
			id, ok := next[key]
			if !ok {
				id = n
				n++
				next[key] = id
			}
			newBlock[st.ID] = id
		}
		if n == nBlocks {
			break
		}
		block, nBlocks = newBlock, n
	}

	reps := make(map[int]StateID)
	changed := false
	for _, st := range m.States {
		if st.Kind != KindArtificial || !r.alive(st.ID) {
			continue
		}
		if rep, ok := reps[block[st.ID]]; ok {
			r.redirect[st.ID] = rep
			if st.Grouping {
				m.byGroup[st.Ord] = rep
			} else {
				m.byOrd[st.Ord] = rep
			}
			m.MergedNodes++
			changed = true
		} else {
			reps[block[st.ID]] = st.ID
		}
	}
	if changed {
		r.normalize()
	}
	return changed
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// prunable reports whether the artificial state s derives nothing its
// prefix chain does not: every FD-edge target of s is either within the
// ε-closure of s or an FD-edge target (same symbol) of a prefix.
func (r *reducer) prunable(s StateID) bool {
	m := r.m
	// An ordering state carrying a grouping ε edge contributes that
	// grouping to every DFSM state containing it; redirecting to the
	// prefix would lose it (the prefix's grouping is smaller). Keep it.
	if m.epsGroup[s] != NoState {
		return false
	}
	nFD := len(m.FDSets)
	inEps := map[StateID]bool{s: true}
	var chain []StateID
	for e := m.eps[s]; e != NoState; e = m.eps[e] {
		inEps[e] = true
		chain = append(chain, e)
	}
	for sym := 0; sym < nFD; sym++ {
		for _, t := range m.out[int(s)*nFD+sym] {
			if inEps[t] {
				continue
			}
			covered := false
			for _, p := range chain {
				for _, pt := range m.out[int(p)*nFD+sym] {
					if pt == t {
						covered = true
						break
					}
				}
				if covered {
					break
				}
			}
			if !covered {
				return false
			}
		}
	}
	return true
}

func (r *reducer) pruneOnce() bool {
	r.normalize()
	changed := false
	for _, st := range r.m.States {
		if st.Kind != KindArtificial || !r.alive(st.ID) {
			continue
		}
		if r.prunable(st.ID) {
			r.redirect[st.ID] = r.m.eps[st.ID] // may be NoState
			if st.Grouping {
				delete(r.m.byGroup, st.Ord)
			} else {
				delete(r.m.byOrd, st.Ord)
			}
			r.m.PrunedNodes++
			changed = true
			r.normalize()
		}
	}
	return changed
}

// compact renumbers the surviving states densely and rebuilds all edge
// storage and lookup maps.
func (r *reducer) compact() {
	r.normalize()
	m := r.m
	nFD := len(m.FDSets)

	remap := make([]StateID, len(m.States))
	var states []State
	for _, st := range m.States {
		if r.alive(st.ID) {
			id := StateID(len(states))
			remap[st.ID] = id
			ns := st
			ns.ID = id
			states = append(states, ns)
		} else {
			remap[st.ID] = NoState
		}
	}
	mapped := func(s StateID) StateID {
		s = r.resolve(s)
		if s == NoState {
			return NoState
		}
		return remap[s]
	}

	eps := make([]StateID, len(states))
	epsGroup := make([]StateID, len(states))
	out := make([][]StateID, len(states)*nFD)
	for _, st := range m.States {
		if !r.alive(st.ID) {
			continue
		}
		nid := remap[st.ID]
		eps[nid] = mapped(m.eps[st.ID])
		epsGroup[nid] = mapped(m.epsGroup[st.ID])
		for sym := 0; sym < nFD; sym++ {
			targets := m.out[int(st.ID)*nFD+sym]
			nt := make([]StateID, 0, len(targets))
			for _, t := range targets {
				if mt := mapped(t); mt != NoState && mt != nid {
					nt = append(nt, mt)
				}
			}
			sortStates(nt)
			out[int(nid)*nFD+sym] = nt
		}
	}
	byOrd := make(map[order.ID]StateID, len(m.byOrd))
	for o, s := range m.byOrd {
		if ms := mapped(s); ms != NoState {
			byOrd[o] = ms
		}
	}
	byGroup := make(map[order.ID]StateID, len(m.byGroup))
	for g, s := range m.byGroup {
		if ms := mapped(s); ms != NoState {
			byGroup[g] = ms
		}
	}
	m.States = states
	m.eps = eps
	m.epsGroup = epsGroup
	m.out = out
	m.byOrd = byOrd
	m.byGroup = byGroup
}

// dropInertSymbols removes FD-set symbols whose edges never leave any
// node's ε-closure: applying such an operator can never change the set
// of available interesting orders, so its transition is the identity and
// the symbol needs no column in the precomputed tables.
func dropInertSymbols(m *Machine) {
	nFD := len(m.FDSets)
	inert := make([]bool, nFD)
	for sym := 0; sym < nFD; sym++ {
		inert[sym] = true
		for _, st := range m.States {
			if len(m.FDTargets(st.ID, sym)) > 0 {
				inert[sym] = false
				break
			}
		}
	}
	newSym := make([]int, nFD)
	var kept []order.FDSet
	for sym := 0; sym < nFD; sym++ {
		if inert[sym] {
			newSym[sym] = -1
			m.InertSymbols++
			continue
		}
		newSym[sym] = len(kept)
		kept = append(kept, m.FDSets[sym])
	}
	if len(kept) == nFD {
		return
	}
	out := make([][]StateID, len(m.States)*len(kept))
	for _, st := range m.States {
		for sym := 0; sym < nFD; sym++ {
			if ns := newSym[sym]; ns >= 0 {
				out[int(st.ID)*len(kept)+ns] = m.out[int(st.ID)*nFD+sym]
			}
		}
	}
	for i, s := range m.FDSymbol {
		if s >= 0 {
			m.FDSymbol[i] = newSym[s]
		}
	}
	m.FDSets = kept
	m.out = out
}
