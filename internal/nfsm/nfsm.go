// Package nfsm constructs the non-deterministic finite state machine of
// paper §5.3: one node per ordering in the (pruned) closure Ω(O_I, F),
// ε-edges to prefixes, edges labelled with the FD sets introduced by
// algebraic operators, and an artificial start node whose outgoing edges
// are labelled with the produced interesting orders. The pruning
// techniques of §5.7 (functional-dependency pruning, merging and pruning
// of artificial nodes) are implemented here and individually switchable.
package nfsm

import (
	"fmt"
	"sort"
	"strings"

	"orderopt/internal/bitset"
	"orderopt/internal/order"
)

// StateID identifies a state of the NFSM. StartState (0) is the
// artificial start node q0.
type StateID int32

// StartState is q0, the artificial start node (§5.3).
const StartState StateID = 0

// NoState marks the absence of a state (e.g. no ε successor).
const NoState StateID = -1

// Kind classifies NFSM states.
type Kind uint8

const (
	// KindStart marks the artificial start node q0.
	KindStart Kind = iota
	// KindInteresting marks states for interesting orders (O_I) and
	// their prefixes; these appear in the precomputed contains matrix.
	KindInteresting
	// KindArtificial marks states only needed for the construction
	// (Ω(O_I, F) \ O_I); they may be merged and pruned (§5.7).
	KindArtificial
)

// State is one NFSM node.
type State struct {
	ID       StateID
	Ord      order.ID // the ordering/grouping this state represents (not q0)
	Kind     Kind
	Produced bool // ∈ O_P: reachable from q0 via an artificial edge
	// Grouping marks states that stand for groupings (attribute sets
	// whose equal values are adjacent — clustered, not sorted). The Ord
	// field then holds the canonical sorted attribute sequence. This is
	// the follow-up work's extension of the framework.
	Grouping bool
}

// Input is the outcome of the paper's step 1 ("determine the input"):
// the interesting orders, partitioned into produced (O_P) and tested-only
// (O_T), and the FD sets of all operators.
type Input struct {
	Reg      *order.Registry
	In       *order.Interner
	Produced []order.ID // O_P: produced (and possibly also tested)
	Tested   []order.ID // O_T: only tested for
	FDSets   []order.FDSet
	// IncludeEmpty adds a produced state for the empty ordering: table
	// scans emit it (§5.6, "either an empty ordering or the ordering
	// resulting from the operator"), and constant dependencies ∅ → x
	// can then derive (x) from an unordered stream after a selection
	// x = const.
	IncludeEmpty bool
	// ProducedGroupings / TestedGroupings extend the machine with
	// grouping states (canonical IDs from order.GroupingOf). Hash
	// grouping produces a clustering; sort-based grouping merely tests
	// for one.
	ProducedGroupings []order.ID
	TestedGroupings   []order.ID
}

// Options switches the §5.7 pruning techniques individually so their
// effect can be measured (the §6.2 experiment) and so the unpruned
// figures of the paper can be reproduced exactly.
type Options struct {
	// PruneFDs removes dependencies that can never lead to an
	// interesting order (step 2b).
	PruneFDs bool
	// MergeArtificial merges artificial nodes that behave identically
	// (step 2d, first heuristic).
	MergeArtificial bool
	// PruneArtificial removes artificial nodes that reach interesting
	// nodes only through ε edges (step 2d, second heuristic).
	PruneArtificial bool
	// LengthCutoff truncates derived orderings at the length of the
	// longest interesting order.
	LengthCutoff bool
	// PrefixViability keeps a derived ordering only when its prefix is,
	// modulo equivalence classes, a prefix of an interesting order.
	PrefixViability bool
	// DropInertSymbols removes FD-set symbols whose edges never leave a
	// node's ε-closure; applying such an operator is the identity
	// transition. This is an exact, graph-level variant of the paper's
	// Ω-based dependency pruning.
	DropInertSymbols bool
}

// AllPruning enables every reduction technique (the paper's default).
func AllPruning() Options {
	return Options{
		PruneFDs:         true,
		MergeArtificial:  true,
		PruneArtificial:  true,
		LengthCutoff:     true,
		PrefixViability:  true,
		DropInertSymbols: true,
	}
}

// NoPruning disables every reduction technique (used for the unpruned
// figures and the §6.2 comparison).
func NoPruning() Options { return Options{} }

// Machine is the constructed NFSM. Edge storage is split by label kind:
// eps holds the single ε successor per state (the immediate prefix), out
// holds the FD-set labelled edges, and startEdges holds the artificial
// edges leaving q0. Self-loops for FD symbols are implicit: every state
// trivially derives itself under any FD set.
type Machine struct {
	Reg *order.Registry
	In  *order.Interner

	// Symbols: FD-set symbols first (0..len(FDSets)-1), then one
	// produced symbol per entry of Produced (orderings and groupings).
	FDSets   []order.FDSet
	Produced []order.ID
	// ProducedGrouping[i] marks Produced[i] as a grouping entry.
	ProducedGrouping []bool

	// FDSymbol maps the caller's original FD-set index to its symbol, or
	// -1 when the whole set was pruned (identity transition).
	FDSymbol []int

	States   []State
	eps      []StateID // per state: prefix ε successor or NoState
	epsGroup []StateID // per state: ε to the state's attr-set grouping
	out      [][]StateID

	start      map[order.ID]StateID // produced ordering → entry state
	startGroup map[order.ID]StateID // produced grouping → entry state

	byOrd   map[order.ID]StateID
	byGroup map[order.ID]StateID

	// Stats filled during construction.
	PrunedFDs    int // individual dependencies removed in step 2b
	MergedNodes  int // artificial nodes merged away
	PrunedNodes  int // artificial nodes pruned away
	InertSymbols int // FD-set symbols dropped as identity
}

// NumStates returns the number of states including q0.
func (m *Machine) NumStates() int { return len(m.States) }

// NumFDSymbols returns the number of FD-set symbols in the alphabet.
func (m *Machine) NumFDSymbols() int { return len(m.FDSets) }

// NumSymbols returns the total alphabet size (FD sets + produced orders).
func (m *Machine) NumSymbols() int { return len(m.FDSets) + len(m.Produced) }

// Eps returns the prefix ε successor of s, or NoState.
func (m *Machine) Eps(s StateID) StateID { return m.eps[s] }

// EpsGroup returns the grouping ε successor of s (an ordering state
// implies the grouping over its attributes), or NoState.
func (m *Machine) EpsGroup(s StateID) StateID { return m.epsGroup[s] }

// FDTargets returns the states reachable from s via one edge labelled
// with FD symbol sym (the implicit self-loop not included).
func (m *Machine) FDTargets(s StateID, sym int) []StateID {
	return m.out[int(s)*len(m.FDSets)+sym]
}

// StartTarget returns the entry state for a produced ordering, or
// NoState if the ordering is not in O_P.
func (m *Machine) StartTarget(o order.ID) StateID {
	if t, ok := m.start[o]; ok {
		return t
	}
	return NoState
}

// StartGroupTarget returns the entry state for a produced grouping.
func (m *Machine) StartGroupTarget(g order.ID) StateID {
	if t, ok := m.startGroup[g]; ok {
		return t
	}
	return NoState
}

// StartTargetForSymbol resolves a produced symbol (ordering or grouping)
// to its entry state.
func (m *Machine) StartTargetForSymbol(sym int) StateID {
	i := sym - len(m.FDSets)
	if i < 0 || i >= len(m.Produced) {
		return NoState
	}
	if m.ProducedGrouping[i] {
		return m.StartGroupTarget(m.Produced[i])
	}
	return m.StartTarget(m.Produced[i])
}

// StateOf returns the state representing ordering o, or NoState.
func (m *Machine) StateOf(o order.ID) StateID {
	if s, ok := m.byOrd[o]; ok {
		return s
	}
	return NoState
}

// GroupStateOf returns the state representing grouping g, or NoState.
func (m *Machine) GroupStateOf(g order.ID) StateID {
	if s, ok := m.byGroup[g]; ok {
		return s
	}
	return NoState
}

// ProducedSymbol returns the symbol index of a produced ordering, or -1.
func (m *Machine) ProducedSymbol(o order.ID) int {
	for i, p := range m.Produced {
		if p == o && !m.ProducedGrouping[i] {
			return len(m.FDSets) + i
		}
	}
	return -1
}

// ProducedGroupingSymbol returns the symbol of a produced grouping, or -1.
func (m *Machine) ProducedGroupingSymbol(g order.ID) int {
	for i, p := range m.Produced {
		if p == g && m.ProducedGrouping[i] {
			return len(m.FDSets) + i
		}
	}
	return -1
}

// InterestingStates returns the states of kind KindInteresting sorted by
// ordering; these form the columns of the precomputed contains matrix.
func (m *Machine) InterestingStates() []State {
	var out []State
	for _, s := range m.States {
		if s.Kind == KindInteresting {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Build runs the preparation steps 2(a)–2(e) of Figure 3.
func Build(input Input, opt Options) (*Machine, error) {
	if input.Reg == nil || input.In == nil {
		return nil, fmt.Errorf("nfsm: Input.Reg and Input.In are required")
	}
	b := &builder{input: input, opt: opt}
	return b.build()
}

type builder struct {
	input Input
	opt   Options

	interesting []order.ID // O_I = O_P ∪ O_T, deduplicated
	producedSet map[order.ID]bool
	fdSets      []order.FDSet // pruned, deduplicated; symbol i
	fdSymbol    []int         // original index → symbol or -1
	deriver     *order.Deriver

	groupInteresting []order.ID
	groupProducedSet map[order.ID]bool

	prunedFDs int
}

// groupDeriver builds the grouping derivation engine, with viability
// pruning when the prefix heuristic is enabled.
func (b *builder) groupDeriver() *order.GroupDeriver {
	d := &order.GroupDeriver{In: b.input.In}
	if b.opt.PrefixViability && len(b.groupInteresting) > 0 {
		reps := order.EquivClasses(b.input.Reg.Len(), b.fdSets)
		d.Viability = order.NewGroupingViability(b.input.In, b.groupInteresting, reps)
	}
	return d
}

func (b *builder) producedGroupList() []order.ID {
	out := make([]order.ID, 0, len(b.groupProducedSet))
	for g := range b.groupProducedSet {
		out = append(out, g)
	}
	b.input.In.SortIDs(out)
	return out
}

func (b *builder) build() (*Machine, error) {
	if err := b.determineInput(); err != nil {
		return nil, err
	}
	b.pruneFDs()
	b.setupDeriver()

	m := &Machine{
		Reg:        b.input.Reg,
		In:         b.input.In,
		FDSets:     b.fdSets,
		FDSymbol:   b.fdSymbol,
		start:      make(map[order.ID]StateID),
		startGroup: make(map[order.ID]StateID),
		byOrd:      make(map[order.ID]StateID),
		byGroup:    make(map[order.ID]StateID),
		PrunedFDs:  b.prunedFDs,
	}

	// Step 2a: nodes = pruned closure Ω(O_I, F), plus q0. With the
	// empty ordering enabled, everything constant FDs can derive from an
	// unordered stream joins the closure seed.
	allFDs := order.FDsOf(b.fdSets)
	seed := b.interesting
	if b.input.IncludeEmpty {
		seed = append(append([]order.ID(nil), seed...), b.emptyDerivations(allFDs)...)
	}
	nodes := b.deriver.Closure(seed, allFDs)
	interestingSet := make(map[order.ID]bool, len(b.interesting))
	for _, o := range b.interesting {
		interestingSet[o] = true
		// Prefixes of interesting orders are also answerable by the
		// contains matrix (cf. Figure 9, which lists (a)).
		for _, p := range b.input.In.Prefixes(o) {
			interestingSet[p] = true
		}
	}
	m.States = append(m.States, State{ID: StartState, Kind: KindStart})
	var emptyState StateID = NoState
	if b.input.IncludeEmpty {
		emptyState = StateID(len(m.States))
		m.States = append(m.States, State{
			ID: emptyState, Ord: order.EmptyID, Kind: KindInteresting, Produced: true,
		})
		m.byOrd[order.EmptyID] = emptyState
	}
	for _, o := range nodes {
		kind := KindArtificial
		if interestingSet[o] {
			kind = KindInteresting
		}
		id := StateID(len(m.States))
		m.States = append(m.States, State{
			ID: id, Ord: o, Kind: kind, Produced: b.producedSet[o],
		})
		m.byOrd[o] = id
	}

	// Grouping states (the follow-up work's extension): interesting
	// groupings, the attr-set groupings implied by ordering nodes, and
	// everything FD-derivable from them.
	groupDeriver := b.groupDeriver()
	var groupSeed []order.ID
	groupSeed = append(groupSeed, b.groupInteresting...)
	if len(b.groupInteresting) > 0 {
		for _, o := range nodes {
			attrs := b.input.In.Seq(o)
			if groupDeriver.Viability != nil && !groupDeriver.Viability.Viable(attrs) {
				continue
			}
			groupSeed = append(groupSeed, order.GroupingOf(b.input.In, attrs))
		}
	}
	groupInterestingSet := make(map[order.ID]bool, len(b.groupInteresting))
	for _, g := range b.groupInteresting {
		groupInterestingSet[g] = true
	}
	for _, g := range groupDeriver.Closure(groupSeed, allFDs) {
		if _, ok := m.byGroup[g]; ok {
			continue
		}
		kind := KindArtificial
		if groupInterestingSet[g] {
			kind = KindInteresting
		}
		id := StateID(len(m.States))
		m.States = append(m.States, State{
			ID: id, Ord: g, Kind: kind, Produced: b.groupProducedSet[g], Grouping: true,
		})
		m.byGroup[g] = id
	}

	// Step 2c: edges. ε to the immediate prefix; FD-set edges to every
	// ordering derivable under that set (closure, §2's ⊢ relation),
	// excluding the ε-closure of the source (implicit).
	nFD := len(b.fdSets)
	m.eps = make([]StateID, len(m.States))
	m.epsGroup = make([]StateID, len(m.States))
	m.out = make([][]StateID, len(m.States)*nFD)
	m.eps[StartState] = NoState
	m.epsGroup[StartState] = NoState
	for _, st := range m.States[1:] {
		m.epsGroup[st.ID] = NoState
		if st.Grouping {
			// Grouping states: no ε successors; FD edges by the
			// grouping derivation rules.
			m.eps[st.ID] = NoState
			for sym, set := range b.fdSets {
				var targets []StateID
				for _, t := range groupDeriver.Closure([]order.ID{st.Ord}, set.FDs) {
					if t == st.Ord {
						continue
					}
					ts, ok := m.byGroup[t]
					if !ok {
						return nil, fmt.Errorf("nfsm: derived grouping %s missing from node set",
							b.input.In.Format(b.input.Reg, t))
					}
					targets = append(targets, ts)
				}
				sortStates(targets)
				m.out[int(st.ID)*nFD+sym] = targets
			}
			continue
		}
		if st.ID != emptyState && len(b.groupInteresting) > 0 {
			// An ordering implies the grouping over its attributes.
			g := order.GroupingOf(b.input.In, b.input.In.Seq(st.Ord))
			if gs, ok := m.byGroup[g]; ok {
				m.epsGroup[st.ID] = gs
			}
		}
		if st.ID == emptyState {
			// The empty ordering's FD edges derive orderings from an
			// unordered stream (constants only can apply).
			m.eps[st.ID] = NoState
			for sym, set := range b.fdSets {
				var targets []StateID
				for _, t := range b.deriver.Closure(b.emptyDerivations(set.FDs), set.FDs) {
					ts, ok := m.byOrd[t]
					if !ok {
						return nil, fmt.Errorf("nfsm: empty-derived ordering %s missing from node set",
							b.input.In.Format(b.input.Reg, t))
					}
					targets = append(targets, ts)
				}
				sortStates(targets)
				m.out[int(st.ID)*nFD+sym] = targets
			}
			continue
		}
		seq := b.input.In.Seq(st.Ord)
		if len(seq) > 1 {
			m.eps[st.ID] = m.byOrd[b.input.In.Prefix(st.Ord)]
		} else if emptyState != NoState {
			// Every ordering trivially satisfies the empty ordering.
			m.eps[st.ID] = emptyState
		} else {
			m.eps[st.ID] = NoState
		}
		inEps := map[order.ID]bool{st.Ord: true}
		for _, p := range b.input.In.Prefixes(st.Ord) {
			inEps[p] = true
		}
		for sym, set := range b.fdSets {
			var targets []StateID
			for _, t := range b.deriver.Closure([]order.ID{st.Ord}, set.FDs) {
				if inEps[t] {
					continue
				}
				ts, ok := m.byOrd[t]
				if !ok {
					return nil, fmt.Errorf("nfsm: derived ordering %s missing from node set",
						b.input.In.Format(b.input.Reg, t))
				}
				targets = append(targets, ts)
			}
			sortStates(targets)
			m.out[int(st.ID)*nFD+sym] = targets
		}
	}

	// Step 2d: merge and prune artificial nodes.
	if b.opt.MergeArtificial || b.opt.PruneArtificial {
		reduceArtificial(m, b.opt)
	}

	// Step 2e: artificial start edges for the produced orders (and the
	// empty ordering when enabled: table scans enter there).
	if b.input.IncludeEmpty {
		m.Produced = append(m.Produced, order.EmptyID)
		m.ProducedGrouping = append(m.ProducedGrouping, false)
		m.start[order.EmptyID] = m.byOrd[order.EmptyID]
	}
	for _, o := range b.producedList() {
		m.Produced = append(m.Produced, o)
		m.ProducedGrouping = append(m.ProducedGrouping, false)
		m.start[o] = m.byOrd[o]
	}
	for _, g := range b.producedGroupList() {
		m.Produced = append(m.Produced, g)
		m.ProducedGrouping = append(m.ProducedGrouping, true)
		m.startGroup[g] = m.byGroup[g]
	}

	if b.opt.DropInertSymbols {
		dropInertSymbols(m)
	}
	return m, nil
}

// emptyDerivations returns everything a single FD application can derive
// from the empty ordering (only dependencies with empty determinants —
// constants — apply to an unordered stream).
func (b *builder) emptyDerivations(fds []order.FD) []order.ID {
	var out []order.ID
	for _, fd := range fds {
		out = append(out, b.deriver.Derive(order.EmptyID, fd)...)
	}
	return out
}

func (b *builder) producedList() []order.ID {
	out := make([]order.ID, 0, len(b.producedSet))
	for o := range b.producedSet {
		out = append(out, o)
	}
	b.input.In.SortIDs(out)
	return out
}

// determineInput deduplicates the interesting orders and FD sets.
func (b *builder) determineInput() error {
	b.producedSet = make(map[order.ID]bool)
	seen := make(map[order.ID]bool)
	add := func(o order.ID, produced bool) error {
		if o == order.EmptyID {
			return fmt.Errorf("nfsm: the empty ordering cannot be an interesting order")
		}
		if produced {
			b.producedSet[o] = true
		}
		if !seen[o] {
			seen[o] = true
			b.interesting = append(b.interesting, o)
		}
		return nil
	}
	for _, o := range b.input.Produced {
		if err := add(o, true); err != nil {
			return err
		}
	}
	for _, o := range b.input.Tested {
		if err := add(o, false); err != nil {
			return err
		}
	}
	// Groupings: canonicalize and deduplicate.
	b.groupProducedSet = make(map[order.ID]bool)
	seenGroup := make(map[order.ID]bool)
	addGroup := func(g order.ID, produced bool) error {
		if g == order.EmptyID {
			return fmt.Errorf("nfsm: the empty grouping cannot be interesting")
		}
		canon := order.GroupingOf(b.input.In, b.input.In.Seq(g))
		if produced {
			b.groupProducedSet[canon] = true
		}
		if !seenGroup[canon] {
			seenGroup[canon] = true
			b.groupInteresting = append(b.groupInteresting, canon)
		}
		return nil
	}
	for _, g := range b.input.ProducedGroupings {
		if err := addGroup(g, true); err != nil {
			return err
		}
	}
	for _, g := range b.input.TestedGroupings {
		if err := addGroup(g, false); err != nil {
			return err
		}
	}
	b.input.In.SortIDs(b.groupInteresting)

	if len(b.interesting) == 0 && len(b.groupInteresting) == 0 {
		return fmt.Errorf("nfsm: no interesting orders")
	}
	b.input.In.SortIDs(b.interesting)

	// Deduplicate FD sets by canonical key; remember each original
	// index's symbol.
	b.fdSymbol = make([]int, len(b.input.FDSets))
	byKey := make(map[string]int)
	for i, s := range b.input.FDSets {
		k := s.Key()
		if sym, ok := byKey[k]; ok {
			b.fdSymbol[i] = sym
			continue
		}
		sym := len(b.fdSets)
		byKey[k] = sym
		b.fdSymbol[i] = sym
		b.fdSets = append(b.fdSets, order.NewFDSet(s.FDs...))
	}
	return nil
}

// pruneFDs is step 2b: dependencies whose attributes cannot contribute to
// any interesting order are removed. Relevance propagates through
// equations (a = b with relevant a makes b relevant, because a chain of
// equations can rewrite orderings step by step).
func (b *builder) pruneFDs() {
	if !b.opt.PruneFDs {
		return
	}
	relevant := bitset.New(b.input.Reg.Len())
	for _, o := range b.interesting {
		for _, a := range b.input.In.Seq(o) {
			relevant.Add(int(a))
		}
	}
	for _, g := range b.groupInteresting {
		for _, a := range b.input.In.Seq(g) {
			relevant.Add(int(a))
		}
	}
	for changed := true; changed; {
		changed = false
		for _, s := range b.fdSets {
			for _, fd := range s.FDs {
				if fd.Kind != order.KindEquation {
					continue
				}
				l, r := relevant.Contains(int(fd.Left)), relevant.Contains(int(fd.Right))
				if l != r {
					relevant.Add(int(fd.Left))
					relevant.Add(int(fd.Right))
					changed = true
				}
			}
		}
	}
	keep := func(fd order.FD) bool {
		switch fd.Kind {
		case order.KindEquation:
			return relevant.Contains(int(fd.Left)) && relevant.Contains(int(fd.Right))
		case order.KindConstant:
			return relevant.Contains(int(fd.Dependent))
		default:
			return relevant.Contains(int(fd.Dependent)) && fd.Determinant.SubsetOf(relevant)
		}
	}
	for i, s := range b.fdSets {
		kept := s.FDs[:0]
		for _, fd := range s.FDs {
			if keep(fd) {
				kept = append(kept, fd)
			} else {
				b.prunedFDs++
			}
		}
		b.fdSets[i].FDs = kept
	}
}

func (b *builder) setupDeriver() {
	var reps []order.Attr
	var index *order.PrefixIndex
	maxEff := 0
	if b.opt.PrefixViability || b.opt.LengthCutoff {
		reps = order.EquivClasses(b.input.Reg.Len(), b.fdSets)
	}
	mkIndex := func() *order.PrefixIndex {
		ix := order.NewPrefixIndex(b.input.In, b.interesting, reps)
		// Interesting groupings keep orderings alive too: their
		// prefix attribute sets can contribute groupings via ε.
		ix.AddGroupings(b.input.In, b.groupInteresting)
		return ix
	}
	if b.opt.PrefixViability {
		index = mkIndex()
	}
	if b.opt.LengthCutoff {
		ix := index
		if ix == nil {
			ix = mkIndex()
		}
		maxEff = ix.MaxLen()
	}
	b.deriver = &order.Deriver{In: b.input.In, Reps: reps, Index: index, MaxLen: maxEff}
}

func sortStates(s []StateID) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

// DOT renders the machine as a Graphviz digraph: artificial nodes
// dashed, ε edges dotted, FD edges labelled with their dependency sets.
func (m *Machine) DOT() string {
	var b strings.Builder
	b.WriteString("digraph nfsm {\n  rankdir=LR;\n  q0 [shape=point];\n")
	name := func(s StateID) string {
		if s == StartState {
			return "q0"
		}
		return fmt.Sprintf("%q", m.In.Format(m.Reg, m.States[s].Ord))
	}
	for _, st := range m.States {
		if st.Kind == KindArtificial {
			fmt.Fprintf(&b, "  %s [style=dashed];\n", name(st.ID))
		}
	}
	for _, o := range m.Produced {
		fmt.Fprintf(&b, "  q0 -> %s [label=%q];\n",
			name(m.StartTarget(o)), m.In.Format(m.Reg, o))
	}
	for _, st := range m.States {
		if st.Kind == KindStart {
			continue
		}
		if e := m.Eps(st.ID); e != NoState {
			fmt.Fprintf(&b, "  %s -> %s [label=\"ε\", style=dotted];\n", name(st.ID), name(e))
		}
		for sym := range m.FDSets {
			for _, t := range m.FDTargets(st.ID, sym) {
				fmt.Fprintf(&b, "  %s -> %s [label=%q];\n",
					name(st.ID), name(t), m.FDSets[sym].Format(m.Reg))
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Dump renders the machine in a readable textual form (used by the
// orderopt CLI and golden tests).
func (m *Machine) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "NFSM: %d states, %d FD symbols, %d produced symbols\n",
		len(m.States), len(m.FDSets), len(m.Produced))
	for _, st := range m.States {
		switch st.Kind {
		case KindStart:
			sb.WriteString("  q0 (start)\n")
			for _, o := range m.Produced {
				fmt.Fprintf(&sb, "    --[%s]--> %s\n",
					m.In.Format(m.Reg, o), m.In.Format(m.Reg, o))
			}
		default:
			tag := ""
			if st.Kind == KindArtificial {
				tag = " (artificial)"
			}
			if st.Produced {
				tag += " (produced)"
			}
			fmt.Fprintf(&sb, "  %s%s\n", m.In.Format(m.Reg, st.Ord), tag)
			if e := m.eps[st.ID]; e != NoState {
				fmt.Fprintf(&sb, "    --ε--> %s\n", m.In.Format(m.Reg, m.States[e].Ord))
			}
			for sym := range m.FDSets {
				for _, t := range m.FDTargets(st.ID, sym) {
					fmt.Fprintf(&sb, "    --%s--> %s\n",
						m.FDSets[sym].Format(m.Reg), m.In.Format(m.Reg, m.States[t].Ord))
				}
			}
		}
	}
	return sb.String()
}
