package nfsm

import (
	"strings"
	"testing"

	"orderopt/internal/order"
)

// fixture builds the running example of §5.2–5.3: O_P = {(b), (a,b)},
// O_T = {(a,b,c)}, F = {{b→c}, {b→d}}.
type fixture struct {
	reg *order.Registry
	in  *order.Interner
}

func newFixture() *fixture {
	return &fixture{reg: order.NewRegistry(), in: order.NewInterner()}
}

func (f *fixture) ord(names ...string) order.ID {
	return f.in.Intern(f.reg.Attrs(names...))
}

func (f *fixture) runningExample() Input {
	b := f.reg.Attr("b")
	c := f.reg.Attr("c")
	d := f.reg.Attr("d")
	return Input{
		Reg:      f.reg,
		In:       f.in,
		Produced: []order.ID{f.ord("b"), f.ord("a", "b")},
		Tested:   []order.ID{f.ord("a", "b", "c")},
		FDSets: []order.FDSet{
			order.NewFDSet(order.NewFD(c, b)),
			order.NewFDSet(order.NewFD(d, b)),
		},
	}
}

func (f *fixture) stateOrds(m *Machine) map[string]Kind {
	out := map[string]Kind{}
	for _, st := range m.States {
		if st.Kind == KindStart {
			continue
		}
		out[f.in.Format(f.reg, st.Ord)] = st.Kind
	}
	return out
}

// Figure 7: the fully pruned NFSM for the running example has exactly the
// states q0, (a), (b), (a,b), (a,b,c); b→d is pruned; (b,c) never exists.
func TestFigures4To7FullPruning(t *testing.T) {
	f := newFixture()
	m, err := Build(f.runningExample(), AllPruning())
	if err != nil {
		t.Fatal(err)
	}
	got := f.stateOrds(m)
	want := map[string]Kind{
		"(a)":       KindInteresting, // prefix of (a,b)
		"(b)":       KindInteresting,
		"(a, b)":    KindInteresting,
		"(a, b, c)": KindInteresting,
	}
	if len(got) != len(want) {
		t.Fatalf("states = %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("state %s kind = %v, want %v", k, got[k], v)
		}
	}
	if m.NumFDSymbols() != 1 {
		t.Fatalf("FD symbols = %d, want 1 ({b→d} pruned)", m.NumFDSymbols())
	}
	if m.PrunedFDs != 1 {
		t.Errorf("PrunedFDs = %d, want 1", m.PrunedFDs)
	}
	// The only FD edge is (a,b) --{b→c}--> (a,b,c).
	ab := m.StateOf(f.ord("a", "b"))
	abc := m.StateOf(f.ord("a", "b", "c"))
	targets := m.FDTargets(ab, 0)
	if len(targets) != 1 || targets[0] != abc {
		t.Errorf("FDTargets((a,b), {b→c}) = %v, want [%d]", targets, abc)
	}
	if n := len(m.FDTargets(m.StateOf(f.ord("b")), 0)); n != 0 {
		t.Errorf("(b) should have no {b→c} edge after pruning, got %d targets", n)
	}
	// ε edges: (a,b,c) → (a,b) → (a).
	if m.Eps(abc) != ab {
		t.Error("ε((a,b,c)) ≠ (a,b)")
	}
	if m.Eps(ab) != m.StateOf(f.ord("a")) {
		t.Error("ε((a,b)) ≠ (a)")
	}
	// Start edges exist for the produced orders only.
	if m.StartTarget(f.ord("b")) == NoState || m.StartTarget(f.ord("a", "b")) == NoState {
		t.Error("missing start edges for produced orders")
	}
	if m.StartTarget(f.ord("a", "b", "c")) != NoState {
		t.Error("tested-only order must not have a start edge")
	}
}

// Without any pruning the closure contains every derivable ordering
// including the d-extensions (the paper's Figure 5 stage plus closure).
func TestRunningExampleNoPruning(t *testing.T) {
	f := newFixture()
	m, err := Build(f.runningExample(), NoPruning())
	if err != nil {
		t.Fatal(err)
	}
	got := f.stateOrds(m)
	for _, s := range []string{
		"(a)", "(b)", "(a, b)", "(a, b, c)", "(b, c)", "(b, d)", "(a, b, d)",
		"(a, b, c, d)", "(a, b, d, c)", "(b, c, d)", "(b, d, c)",
	} {
		if _, ok := got[s]; !ok {
			t.Errorf("missing state %s", s)
		}
	}
	if len(got) != 11 {
		t.Errorf("states = %d, want 11: %v", len(got), got)
	}
	if m.NumFDSymbols() != 2 {
		t.Errorf("FD symbols = %d, want 2", m.NumFDSymbols())
	}
}

// Figure 6: with the viability heuristic off but artificial-node pruning
// on, (b,c) is first created and then pruned because it reaches the
// interesting node (b) only through ε.
func TestArtificialNodePruning(t *testing.T) {
	f := newFixture()
	opt := Options{PruneFDs: true, MergeArtificial: true, PruneArtificial: true, DropInertSymbols: true}
	m, err := Build(f.runningExample(), opt)
	if err != nil {
		t.Fatal(err)
	}
	got := f.stateOrds(m)
	if _, ok := got["(b, c)"]; ok {
		t.Error("(b,c) should have been pruned")
	}
	if len(got) != 4 {
		t.Errorf("states = %v, want 4 ordering states", got)
	}
	if m.PrunedNodes == 0 {
		t.Error("expected PrunedNodes > 0")
	}
}

// Figure 11 is drawn without pruning: the simple §6.1 query must yield
// exactly 11 ordering states under id = jobid.
func TestFigure11(t *testing.T) {
	f := newFixture()
	id := f.reg.Attr("id")
	jobid := f.reg.Attr("jobid")
	input := Input{
		Reg:      f.reg,
		In:       f.in,
		Produced: []order.ID{f.ord("id"), f.ord("jobid"), f.ord("id", "name")},
		Tested:   []order.ID{f.ord("salary")},
		FDSets:   []order.FDSet{order.NewFDSet(order.NewEquation(id, jobid))},
	}
	m, err := Build(input, NoPruning())
	if err != nil {
		t.Fatal(err)
	}
	got := f.stateOrds(m)
	if len(got) != 11 {
		t.Fatalf("states = %d, want 11: %v", len(got), got)
	}
	// The equation edge (id) → (jobid) must exist: a = b is stronger than
	// the FD pair (paper, §6.1).
	idState := m.StateOf(f.ord("id"))
	jobidState := m.StateOf(f.ord("jobid"))
	found := false
	for _, tgt := range m.FDTargets(idState, 0) {
		if tgt == jobidState {
			found = true
		}
	}
	if !found {
		t.Error("missing replacement edge (id) --id=jobid--> (jobid)")
	}
	// (salary) exists but has no start edge.
	if m.StateOf(f.ord("salary")) == NoState {
		t.Error("(salary) state missing")
	}
	if m.StartTarget(f.ord("salary")) != NoState {
		t.Error("(salary) must not be produced")
	}
}

func TestMergeArtificialNodes(t *testing.T) {
	f := newFixture()
	// Two independent FDs generate the artificial nodes (a,b,x) and
	// (a,b,y) whose behaviour is identical up to their own ordering; they
	// do not merge (different ε targets would be unsound), but twins from
	// the same derivation with identical edges do. Construct a case with
	// two identical-behaviour artificial nodes: interesting (a,b) with
	// x = y equivalent attributes never tested.
	a, b := f.reg.Attr("a"), f.reg.Attr("b")
	input := Input{
		Reg:      f.reg,
		In:       f.in,
		Produced: []order.ID{f.ord("a", "b")},
		FDSets: []order.FDSet{
			order.NewFDSet(order.NewFD(f.reg.Attr("x"), a), order.NewFD(f.reg.Attr("y"), a)),
		},
	}
	_ = b
	m, err := Build(input, Options{MergeArtificial: true})
	if err != nil {
		t.Fatal(err)
	}
	// (a,x) and (a,y) behave identically (both only extend with the
	// other attribute and ε to (a)) — they must merge.
	if m.MergedNodes == 0 {
		t.Errorf("expected merged artificial nodes, got %d\n%s", m.MergedNodes, m.Dump())
	}
}

func TestInertSymbolDropped(t *testing.T) {
	f := newFixture()
	// An FD over attributes that never meet an interesting order is inert
	// even without FD pruning: its edges never leave an ε-closure.
	input := Input{
		Reg:      f.reg,
		In:       f.in,
		Produced: []order.ID{f.ord("a")},
		FDSets: []order.FDSet{
			order.NewFDSet(order.NewFD(f.reg.Attr("z"), f.reg.Attr("q"))),
		},
	}
	m, err := Build(input, Options{DropInertSymbols: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumFDSymbols() != 0 {
		t.Fatalf("FD symbols = %d, want 0", m.NumFDSymbols())
	}
	if m.FDSymbol[0] != -1 {
		t.Fatalf("FDSymbol[0] = %d, want -1 (identity)", m.FDSymbol[0])
	}
	if m.InertSymbols != 1 {
		t.Fatalf("InertSymbols = %d, want 1", m.InertSymbols)
	}
}

func TestFDSymbolMappingDedup(t *testing.T) {
	f := newFixture()
	a, b := f.reg.Attr("a"), f.reg.Attr("b")
	set := order.NewFDSet(order.NewEquation(a, b))
	input := Input{
		Reg:      f.reg,
		In:       f.in,
		Produced: []order.ID{f.ord("a"), f.ord("b")},
		FDSets:   []order.FDSet{set, order.NewFDSet(order.NewEquation(b, a))},
	}
	m, err := Build(input, AllPruning())
	if err != nil {
		t.Fatal(err)
	}
	if m.NumFDSymbols() != 1 {
		t.Fatalf("FD symbols = %d, want 1 (duplicate sets share a symbol)", m.NumFDSymbols())
	}
	if m.FDSymbol[0] != m.FDSymbol[1] {
		t.Fatalf("duplicate FD sets got different symbols: %v", m.FDSymbol)
	}
}

func TestBuildErrors(t *testing.T) {
	f := newFixture()
	if _, err := Build(Input{}, AllPruning()); err == nil {
		t.Error("Build without registry/interner must fail")
	}
	if _, err := Build(Input{Reg: f.reg, In: f.in}, AllPruning()); err == nil {
		t.Error("Build without interesting orders must fail")
	}
	if _, err := Build(Input{Reg: f.reg, In: f.in, Produced: []order.ID{order.EmptyID}}, AllPruning()); err == nil {
		t.Error("Build with empty ordering must fail")
	}
}

func TestProducedSymbolAndDump(t *testing.T) {
	f := newFixture()
	m, err := Build(f.runningExample(), AllPruning())
	if err != nil {
		t.Fatal(err)
	}
	bOrd := f.ord("b")
	if sym := m.ProducedSymbol(bOrd); sym < m.NumFDSymbols() {
		t.Fatalf("ProducedSymbol((b)) = %d, want ≥ %d", sym, m.NumFDSymbols())
	}
	if m.ProducedSymbol(f.ord("a", "b", "c")) != -1 {
		t.Error("tested-only order must have no produced symbol")
	}
	d := m.Dump()
	for _, want := range []string{"q0 (start)", "(a, b, c)", "--ε-->", "{b → c}"} {
		if !strings.Contains(d, want) {
			t.Errorf("Dump missing %q:\n%s", want, d)
		}
	}
}

// The produced orders must be sorted deterministically: (b) before (a,b)
// (shorter first), matching the paper's DFSM numbering in Figure 8.
func TestProducedOrderDeterministic(t *testing.T) {
	f := newFixture()
	m, err := Build(f.runningExample(), AllPruning())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Produced) != 2 {
		t.Fatalf("Produced = %v", m.Produced)
	}
	if f.in.Format(f.reg, m.Produced[0]) != "(b)" || f.in.Format(f.reg, m.Produced[1]) != "(a, b)" {
		t.Errorf("produced order sequence = [%s, %s], want [(b), (a, b)]",
			f.in.Format(f.reg, m.Produced[0]), f.in.Format(f.reg, m.Produced[1]))
	}
}
