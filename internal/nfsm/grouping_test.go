package nfsm

import (
	"strings"
	"testing"

	"orderopt/internal/order"
)

// groupingInput: produced ordering (a,b); tested groupings {a,b} and
// {a,b,c}; FD b → c.
func (f *fixture) groupingInput() Input {
	a := f.reg.Attr("a")
	b := f.reg.Attr("b")
	c := f.reg.Attr("c")
	return Input{
		Reg:      f.reg,
		In:       f.in,
		Produced: []order.ID{f.ord("a", "b")},
		ProducedGroupings: []order.ID{
			order.GroupingOf(f.in, []order.Attr{a, b}),
		},
		TestedGroupings: []order.ID{
			order.GroupingOf(f.in, []order.Attr{c, b, a}), // canonicalizes to {a,b,c}
		},
		FDSets: []order.FDSet{order.NewFDSet(order.NewFD(c, b))},
	}
}

func TestGroupingStatesInMachine(t *testing.T) {
	f := newFixture()
	m, err := Build(f.groupingInput(), AllPruning())
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := f.reg.Attr("a"), f.reg.Attr("b"), f.reg.Attr("c")
	gAB := order.GroupingOf(f.in, []order.Attr{a, b})
	gABC := order.GroupingOf(f.in, []order.Attr{a, b, c})

	sAB := m.GroupStateOf(gAB)
	if sAB == NoState {
		t.Fatal("grouping state {a,b} missing")
	}
	if !m.States[sAB].Grouping || m.States[sAB].Kind != KindInteresting {
		t.Errorf("grouping state flags wrong: %+v", m.States[sAB])
	}
	sABC := m.GroupStateOf(gABC)
	if sABC == NoState {
		t.Fatal("grouping state {a,b,c} missing")
	}

	// The ordering (a,b) must ε-imply the grouping {a,b}.
	ordAB := m.StateOf(f.ord("a", "b"))
	if m.EpsGroup(ordAB) != sAB {
		t.Errorf("EpsGroup((a,b)) = %d, want %d", m.EpsGroup(ordAB), sAB)
	}
	// Grouping states have no prefix ε.
	if m.Eps(sAB) != NoState {
		t.Error("grouping state must have no prefix ε")
	}
	// FD edge {b→c}: {a,b} → {a,b,c}.
	found := false
	for _, tg := range m.FDTargets(sAB, 0) {
		if tg == sABC {
			found = true
		}
	}
	if !found {
		t.Errorf("missing grouping FD edge {a,b} --b→c--> {a,b,c}\n%s", m.Dump())
	}

	// Produced-grouping start edge and symbol.
	if m.StartGroupTarget(gAB) != sAB {
		t.Error("StartGroupTarget({a,b}) wrong")
	}
	sym := m.ProducedGroupingSymbol(gAB)
	if sym < m.NumFDSymbols() {
		t.Fatalf("ProducedGroupingSymbol = %d", sym)
	}
	if m.StartTargetForSymbol(sym) != sAB {
		t.Error("StartTargetForSymbol wrong for grouping")
	}
	if m.ProducedGroupingSymbol(gABC) != -1 {
		t.Error("tested-only grouping must have no produced symbol")
	}
	// Namespaces are separated by method: {a,b,c} is not a produced
	// ordering even though groupings and orderings share interned IDs.
	if m.ProducedSymbol(gABC) != -1 {
		t.Error("grouping-only ID must not resolve as a produced ordering")
	}
	if sym2 := m.ProducedSymbol(gAB); sym2 == sym {
		t.Error("ordering and grouping symbols for the same ID must differ")
	}
}

func TestGroupingOnlyMachine(t *testing.T) {
	f := newFixture()
	x, y := f.reg.Attr("x"), f.reg.Attr("y")
	g := order.GroupingOf(f.in, []order.Attr{x, y})
	m, err := Build(Input{
		Reg: f.reg, In: f.in,
		ProducedGroupings: []order.ID{g},
	}, AllPruning())
	if err != nil {
		t.Fatal(err)
	}
	if m.GroupStateOf(g) == NoState {
		t.Fatal("grouping state missing")
	}
	if m.NumSymbols() != 1 {
		t.Errorf("symbols = %d, want 1 produced grouping", m.NumSymbols())
	}
	if m.NumStates() != 2 {
		t.Errorf("states = %d, want q0 + grouping", m.NumStates())
	}
}

func TestGroupingViabilityPrunesInMachine(t *testing.T) {
	f := newFixture()
	a := f.reg.Attr("a")
	z := f.reg.Attr("z")
	// Interesting grouping {a}; a constant FD on z could extend it to
	// {a,z}, but no interesting grouping contains z → pruned.
	input := Input{
		Reg: f.reg, In: f.in,
		ProducedGroupings: []order.ID{order.GroupingOf(f.in, []order.Attr{a})},
		FDSets:            []order.FDSet{order.NewFDSet(order.NewConstant(z))},
	}
	m, err := Build(input, AllPruning())
	if err != nil {
		t.Fatal(err)
	}
	if m.GroupStateOf(order.GroupingOf(f.in, []order.Attr{a, z})) != NoState {
		t.Error("viability should have pruned {a,z}")
	}
	// Without pruning the node exists.
	f2 := newFixture()
	a2 := f2.reg.Attr("a")
	z2 := f2.reg.Attr("z")
	m2, err := Build(Input{
		Reg: f2.reg, In: f2.in,
		ProducedGroupings: []order.ID{order.GroupingOf(f2.in, []order.Attr{a2})},
		FDSets:            []order.FDSet{order.NewFDSet(order.NewConstant(z2))},
	}, NoPruning())
	if err != nil {
		t.Fatal(err)
	}
	if m2.GroupStateOf(order.GroupingOf(f2.in, []order.Attr{a2, z2})) == NoState {
		t.Error("unpruned machine should keep {a,z}")
	}
}

func TestDOTOutput(t *testing.T) {
	f := newFixture()
	m, err := Build(f.runningExample(), AllPruning())
	if err != nil {
		t.Fatal(err)
	}
	dot := m.DOT()
	for _, want := range []string{"digraph nfsm", "q0 ->", "ε", "{b → c}"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
}

func TestMachineAccessors(t *testing.T) {
	f := newFixture()
	m, err := Build(f.runningExample(), AllPruning())
	if err != nil {
		t.Fatal(err)
	}
	if m.NumStates() != 5 {
		t.Errorf("NumStates = %d", m.NumStates())
	}
	if m.NumSymbols() != 3 {
		t.Errorf("NumSymbols = %d", m.NumSymbols())
	}
	if got := len(m.InterestingStates()); got != 4 {
		t.Errorf("InterestingStates = %d, want 4", got)
	}
	if m.GroupStateOf(f.ord("a")) != NoState {
		t.Error("no grouping states expected")
	}
	if m.StartTargetForSymbol(0) != NoState {
		t.Error("FD symbol must have no start target")
	}
	if m.StartTargetForSymbol(99) != NoState {
		t.Error("out-of-range symbol must have no start target")
	}
	if m.StartGroupTarget(f.ord("a")) != NoState {
		t.Error("no grouping start targets expected")
	}
}
