package orderopt_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesAndCLIsRun builds and runs every example and CLI once so
// they cannot bit-rot. Skipped with -short (each invocation compiles a
// binary).
func TestExamplesAndCLIsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping example/CLI smoke runs in -short mode")
	}
	cases := []struct {
		name string
		args []string
		want string // substring expected in the output
	}{
		{"quickstart", []string{"run", "./examples/quickstart"}, "contains (a, b, c) = true"},
		{"simplequery", []string{"run", "./examples/simplequery"}, "DFSM: 6 states"},
		{"tpcr_q8", []string{"run", "./examples/tpcr_q8"}, "with pruning"},
		{"executor", []string{"run", "./examples/executor"}, "physically satisfied"},
		{"orderopt-running", []string{"run", "./cmd/orderopt", "-example", "running", "-pruning"}, "DFSM: 4 states"},
		{"orderopt-intro-dot", []string{"run", "./cmd/orderopt", "-example", "intro", "-dot"}, "digraph nfsm"},
		{"orderopt-simple", []string{"run", "./cmd/orderopt", "-example", "simple"}, "NFSM: 12 states"},
		{"experiments-prep", []string{"run", "./cmd/experiments", "-table", "prep"}, "NFSM size"},
		{"sqlplan", []string{"run", "./cmd/sqlplan",
			"select * from nation n1, region where n1.n_regionkey = r_regionkey order by r_regionkey"},
			"best plan"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			out, err := exec.Command("go", tc.args...).CombinedOutput()
			if err != nil {
				t.Fatalf("%v failed: %v\n%s", tc.args, err, out)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Errorf("output of %v missing %q:\n%s", tc.args, tc.want, out)
			}
		})
	}
}
