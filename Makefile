GO ?= go

# pipefail so a failing benchmark run (or cmd/benchfmt rejecting an
# empty stream) fails the bench targets instead of tee masking it.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

.PHONY: check build vet fmt staticcheck test race faults bench bench-large bench-serve bench-smoke bench-exec bench-exec-smoke bench-parallel bench-parallel-smoke examples

check: build vet fmt staticcheck test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# staticcheck runs when the binary is available (CI installs it; local
# environments without it skip with a note rather than failing check).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; fi

test:
	$(GO) test ./...

# race runs the full suite under the race detector — the planner layer
# is exercised by many goroutines through shared caches and pools.
race:
	$(GO) test -race ./...

# faults runs the query-lifecycle hardening suite under the race
# detector: the fault-injection scenario sweep (every operator hung,
# errored and delayed), the executor's budget/cancellation tests and
# the serving layer's timeout/budget/drain/retry tests. CI runs it as
# its own step so a lifecycle regression is named, not buried.
faults:
	$(GO) test -race ./internal/faultinject/ \
		-run 'TestScenariosAcrossOperators|TestFault|TestHang|TestDelay|TestTracker|TestMatches'
	$(GO) test -race ./internal/exec/ \
		-run 'TestAccountant|TestBudget|TestMergeJoinGroupRelease|TestCancelDuringExecute|TestDeadlineMidMergeJoin|TestExecuteContextDeadPipeline|TestExchange'
	$(GO) test -race ./internal/server/ \
		-run 'TestExecuteTimeout|TestExecuteDefaultTimeout|TestTimeoutClamp|TestExecuteBudget|TestGlobalMemBudget|TestExecuteClientCancel|TestDrainAndWait|TestClientRetry|TestRetryBackoff'
	$(GO) test -race ./internal/experiments/ -run 'TestAbort'

# bench runs the root-package benchmarks (the paper tables plus the
# enumerator comparison) and records the compact machine-readable log
# (one JSON object per result via cmd/benchfmt — see docs/benchmarks.md)
# so the perf trajectory is tracked from PR to PR.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -json . | $(GO) run ./cmd/benchfmt | tee BENCH_plangen.json

# bench-large records the adaptive large-query tier: exact vs linearized
# DP times and cost ratios around the exact horizon, linearized-only
# beyond it. Same compact schema as BENCH_plangen.json.
bench-large:
	$(GO) test -run '^$$' -bench '^BenchmarkLargeQuery$$' -benchmem -json . | $(GO) run ./cmd/benchfmt | tee BENCH_large.json

# bench-serve measures *served* planning throughput: a closed-loop load
# generator against a real loopback HTTP planning server, per cache
# path (cold / prepared / cachehit). See docs/benchmarks.md.
bench-serve:
	$(GO) run ./cmd/experiments -table serve | tee BENCH_serve.txt

# bench-exec records the end-to-end execution comparison: the same
# TPC-R queries planned with the DFSM framework, the Simmen baseline
# and order-obliviously, each executed by the streaming executor
# (ns/op = pipeline wall time; rows-sorted/op = sorting the plan did
# not avoid). See docs/execution.md and docs/benchmarks.md.
bench-exec:
	$(GO) test -run '^$$' -bench '^BenchmarkExecRuntime$$' -benchmem -json . | $(GO) run ./cmd/benchfmt | tee BENCH_exec.json

# bench-exec-smoke runs the execution benchmark once (no timing); CI
# runs it so the executor benchmark path cannot rot.
bench-exec-smoke:
	$(GO) test -run '^$$' -bench '^BenchmarkExecRuntime$$' -benchtime 1x .

# bench-parallel records morsel-parallel scaling: the execution
# workloads planned at MaxDOP 1/2/4/8 and run through the exchange
# operators. cmd/benchfmt derives speedup-vs-dop1 for every DOP above
# the serial baseline. See docs/benchmarks.md.
bench-parallel:
	$(GO) test -run '^$$' -bench '^BenchmarkExecParallel$$' -benchmem -json . | $(GO) run ./cmd/benchfmt | tee BENCH_parallel.json

# bench-parallel-smoke runs the parallel-scaling benchmark once (no
# timing); CI runs it so the exchange benchmark path cannot rot.
bench-parallel-smoke:
	$(GO) test -run '^$$' -bench '^BenchmarkExecParallel$$' -benchtime 1x .

# bench-smoke compiles and runs every benchmark once (no timing) so
# benchmark code cannot rot; CI runs it on every push. The execution
# benchmarks are excluded (the character class skips names starting
# "BenchmarkEx") — bench-exec-smoke and bench-parallel-smoke cover
# them, so CI runs each exactly once.
bench-smoke:
	$(GO) test -run '^$$' -bench '^Benchmark([^E]|E[^x])' -benchtime 1x ./...

# examples builds and runs every example binary, so the runnable
# documentation cannot rot; CI runs it on every push.
examples:
	$(GO) build ./examples/...
	@set -e; for d in examples/*/; do \
		echo "go run ./$$d"; $(GO) run "./$$d" >/dev/null; done
