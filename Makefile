GO ?= go

.PHONY: check build vet fmt test race bench bench-serve

check: build vet fmt test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

# race runs the full suite under the race detector — the planner layer
# is exercised by many goroutines through shared caches and pools.
race:
	$(GO) test -race ./...

# bench runs the root-package benchmarks (the paper tables plus the
# enumerator comparison) and records the machine-readable log so the
# perf trajectory is tracked from PR to PR.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -json . | tee BENCH_plangen.json

# bench-serve measures *served* planning throughput: a closed-loop load
# generator against a real loopback HTTP planning server, per cache
# path (cold / prepared / cachehit). See docs/benchmarks.md.
bench-serve:
	$(GO) run ./cmd/experiments -table serve | tee BENCH_serve.txt
