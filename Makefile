GO ?= go

.PHONY: check build vet fmt test bench

check: build vet fmt test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

# bench runs the root-package benchmarks (the paper tables plus the
# enumerator comparison) and records the machine-readable log so the
# perf trajectory is tracked from PR to PR.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -json . | tee BENCH_plangen.json
