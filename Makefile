GO ?= go

# pipefail so a failing benchmark run (or cmd/benchfmt rejecting an
# empty stream) fails the bench targets instead of tee masking it.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

.PHONY: check build vet fmt staticcheck test race faults serve-soak conformance conformance-update cover fuzz-smoke bench bench-large bench-serve bench-smoke bench-exec bench-exec-smoke bench-parallel bench-parallel-smoke bench-topk bench-topk-smoke bench-vector bench-vector-smoke examples

check: build vet fmt staticcheck test conformance

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# staticcheck runs when the binary is available (CI installs it; local
# environments without it skip with a note rather than failing check).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; fi

test:
	$(GO) test ./...

# race runs the full suite under the race detector — the planner layer
# is exercised by many goroutines through shared caches and pools.
race:
	$(GO) test -race ./...

# faults runs the query-lifecycle hardening suite under the race
# detector: the fault-injection scenario sweep (every operator hung,
# errored and delayed), the executor's budget/cancellation tests and
# the serving layer's timeout/budget/drain/retry tests. CI runs it as
# its own step so a lifecycle regression is named, not buried.
faults:
	$(GO) test -race ./internal/faultinject/ \
		-run 'TestScenariosAcrossOperators|TestFault|TestHang|TestDelay|TestTracker|TestMatches|TestExtSortMidSpillAbort'
	$(GO) test -race ./internal/exec/ \
		-run 'TestAccountant|TestBudget|TestMergeJoinGroupRelease|TestCancelDuringExecute|TestDeadlineMidMergeJoin|TestExecuteContextDeadPipeline|TestExchange|TestExtSort|TestStreamSinkErrorAborts|TestStreamCancelMidStream|TestStreamBlockedSinkBuffersNothing|TestRegistryConcurrentAcquireEvict|TestRegistryPinBlocksEviction|TestRegistrySingleLoad'
	$(GO) test -race ./internal/server/ \
		-run 'TestExecuteTimeout|TestExecuteDefaultTimeout|TestTimeoutClamp|TestExecuteBudget|TestGlobalMemBudget|TestExecuteClientCancel|TestDrainAndWait|TestClientRetry|TestRetryBackoff|TestExecuteStreamClientDisconnect|TestExecuteStreamFirstRowBeforeMaterialization|TestStreamNoRetryMidStream|TestStreamTrailerAbortNotRetried|TestEvictVsExecute|TestMemoryAdmission'
	$(GO) test -race ./internal/experiments/ -run 'TestAbort'

# serve-soak is the lifecycle endurance run: a minute of mixed
# plan/execute/stream/disconnect traffic under the race detector, over
# an on-demand registry being evicted underneath the queries, ending
# with a leak audit (operators, budget bytes, pins, goroutines). The
# tier-1 suite runs the same test at 1.5s; this target is the long soak
# CI runs alongside `faults`.
serve-soak:
	$(GO) test -race ./internal/server/ -run 'TestServeSoak' -count=1 -timeout 5m -args -soak=60s

# conformance runs the declarative golden corpus (internal/conformance)
# under the race detector: every fixture across the full strategy ×
# planning-idiom × DOP × operator-toggle matrix, asserting identical
# result checksums in every cell plus the recorded plan trees and
# order verdicts. See docs/testing.md.
conformance:
	$(GO) test -race ./internal/conformance/

# conformance-update re-records every fixture's expectation block
# (checksums, row counts, order verdicts, golden plan trees) after an
# intentional planner or executor change. Review the diff before
# committing — the corpus is the executable spec.
conformance-update:
	$(GO) test ./internal/conformance/ -run TestCorpus -update

# COVER_FLOOR is the pinned combined statement coverage of the executor
# and its conformance corpus; cover fails when new executor code lands
# without conformance or unit coverage.
COVER_FLOOR := 85
cover:
	$(GO) test -coverprofile=cover.out -coverpkg=./internal/exec/...,./internal/conformance/... \
		./internal/exec/ ./internal/conformance/
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "combined exec+conformance coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || \
		{ echo "coverage $$total% fell below the $(COVER_FLOOR)% floor"; exit 1; }

# fuzz-smoke runs the SQL round-trip fuzzer briefly on top of its
# checked-in seed corpus (internal/sqlparse/testdata/fuzz): parse →
# bind → render → re-bind must never panic and must keep fingerprints
# stable. CI runs it so the fuzz target cannot rot.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzSQLRoundTrip$$' -fuzztime 10s ./internal/sqlparse/

# bench runs the root-package benchmarks (the paper tables plus the
# enumerator comparison) and records the compact machine-readable log
# (one JSON object per result via cmd/benchfmt — see docs/benchmarks.md)
# so the perf trajectory is tracked from PR to PR.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -json . | $(GO) run ./cmd/benchfmt | tee BENCH_plangen.json

# bench-large records the adaptive large-query tier: exact vs linearized
# DP times and cost ratios around the exact horizon, linearized-only
# beyond it. Same compact schema as BENCH_plangen.json.
bench-large:
	$(GO) test -run '^$$' -bench '^BenchmarkLargeQuery$$' -benchmem -json . | $(GO) run ./cmd/benchfmt | tee BENCH_large.json

# bench-serve measures *served* planning throughput: a closed-loop load
# generator against a real loopback HTTP planning server, per cache
# path (cold / prepared / cachehit). See docs/benchmarks.md.
bench-serve:
	$(GO) run ./cmd/experiments -table serve | tee BENCH_serve.txt

# bench-exec records the end-to-end execution comparison: the same
# TPC-R queries planned with the DFSM framework, the Simmen baseline
# and order-obliviously, each executed by the streaming executor
# (ns/op = pipeline wall time; rows-sorted/op = sorting the plan did
# not avoid). See docs/execution.md and docs/benchmarks.md.
bench-exec:
	$(GO) test -run '^$$' -bench '^BenchmarkExecRuntime$$' -benchmem -json . | $(GO) run ./cmd/benchfmt | tee BENCH_exec.json

# bench-exec-smoke runs the execution benchmark once (no timing); CI
# runs it so the executor benchmark path cannot rot.
bench-exec-smoke:
	$(GO) test -run '^$$' -bench '^BenchmarkExecRuntime$$' -benchtime 1x .

# bench-parallel records morsel-parallel scaling: the execution
# workloads planned at MaxDOP 1/2/4/8 and run through the exchange
# operators. cmd/benchfmt derives speedup-vs-dop1 for every DOP above
# the serial baseline. See docs/benchmarks.md.
bench-parallel:
	$(GO) test -run '^$$' -bench '^BenchmarkExecParallel$$' -benchmem -json . | $(GO) run ./cmd/benchfmt | tee BENCH_parallel.json

# bench-parallel-smoke runs the parallel-scaling benchmark once (no
# timing); CI runs it so the exchange benchmark path cannot rot.
bench-parallel-smoke:
	$(GO) test -run '^$$' -bench '^BenchmarkExecParallel$$' -benchtime 1x .

# bench-topk records LIMIT-k execution: the order-flow query with
# k ∈ {1, 10, 100}, the limit-aware costing's order-satisfying
# early-out pipeline vs the order-oblivious hash + full-sort plan
# (ns/op = pipeline wall time). See docs/benchmarks.md.
bench-topk:
	$(GO) test -run '^$$' -bench '^BenchmarkExecTopK$$' -benchmem -json . | $(GO) run ./cmd/benchfmt | tee BENCH_topk.json

# bench-topk-smoke runs the top-k benchmark once (no timing); CI runs
# it so the top-k benchmark path cannot rot.
bench-topk-smoke:
	$(GO) test -run '^$$' -bench '^BenchmarkExecTopK$$' -benchtime 1x .

# bench-vector records vectorized execution: the order-flow query in
# row and batch mode over tpcr-large and the million-row tpcr-xl tier
# (cmd/benchfmt derives speedup-vs-row for the vec rows), plus the
# external-sort contrast where the order-oblivious plan's top sort
# spills under a 256 KiB budget while the sort-free DFSM plan has no
# sort to spill. See docs/execution.md and docs/benchmarks.md.
bench-vector:
	$(GO) test -run '^$$' -bench '^BenchmarkExecVector$$' -benchmem -json . | $(GO) run ./cmd/benchfmt | tee BENCH_vector.json

# bench-vector-smoke runs the vectorized-execution benchmark once over
# the registry datasets (tpcr-xl excluded via -short: generating a
# million rows is not smoke); CI runs it so the vector benchmark path
# cannot rot.
bench-vector-smoke:
	$(GO) test -short -run '^$$' -bench '^BenchmarkExecVector$$' -benchtime 1x .

# bench-smoke compiles and runs every benchmark once (no timing) so
# benchmark code cannot rot; CI runs it on every push. The execution
# benchmarks are excluded (the character class skips names starting
# "BenchmarkEx") — bench-exec-smoke and bench-parallel-smoke cover
# them, so CI runs each exactly once.
bench-smoke:
	$(GO) test -run '^$$' -bench '^Benchmark([^E]|E[^x])' -benchtime 1x ./...

# examples builds and runs every example binary, so the runnable
# documentation cannot rot; CI runs it on every push.
examples:
	$(GO) build ./examples/...
	@set -e; for d in examples/*/; do \
		echo "go run ./$$d"; $(GO) run "./$$d" >/dev/null; done
